// Package skygraph_bench holds the benchmark harness regenerating every
// table of the paper (Tables I–V) plus the extension experiments E8–E12.
// Each benchmark corresponds to one row of the experiment index in
// DESIGN.md; `go test -bench=. -benchmem` regenerates them all, and
// cmd/experiments prints the paper-vs-measured tables.
package skygraph_bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	mrand "math/rand"

	"skygraph/internal/dataset"
	"skygraph/internal/diversity"
	"skygraph/internal/gdb"
	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/mcs"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/server"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
	"skygraph/internal/vector"
)

// BenchmarkTable1Hotels regenerates Table I / Example 1: the hotel skyline
// {H2, H4, H6}.
func BenchmarkTable1Hotels(b *testing.B) {
	pts := dataset.Hotels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sky := skyline.Compute(pts)
		if len(sky) != 3 {
			b.Fatalf("skyline size %d", len(sky))
		}
	}
}

// BenchmarkFig1Measures regenerates Examples 2–4: DistEd = 4, |mcs| = 4,
// DistMcs = 0.33, DistGu = 0.50 on the reconstructed Fig. 1 pair.
func BenchmarkFig1Measures(b *testing.B) {
	g1, g2 := dataset.Fig1Pair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := measure.Compute(g1, g2, measure.Options{})
		if s.GED != 4 || s.MCS != 4 {
			b.Fatalf("GED=%v MCS=%v", s.GED, s.MCS)
		}
	}
}

// BenchmarkTable2Mcs regenerates Table II: |mcs(gi,q)| for the seven
// database graphs.
func BenchmarkTable2Mcs(b *testing.B) {
	db := dataset.PaperDB()
	q := dataset.PaperQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, g := range db {
			if got := mcs.Size(g, q); got != dataset.PaperMcs[j] {
				b.Fatalf("mcs(%s,q)=%d", g.Name(), got)
			}
		}
	}
}

// BenchmarkTable3GCS regenerates Table III: the full 7x3 GCS matrix.
func BenchmarkTable3GCS(b *testing.B) {
	db := dataset.PaperDB()
	q := dataset.PaperQuery()
	want := dataset.PaperTable3()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, g := range db {
			vec := measure.ComputeGCS(g, q, measure.Options{})
			if dataset.Round2(vec[1]) != want[j].Vec[1] {
				b.Fatalf("row %s: %v", g.Name(), vec)
			}
		}
	}
}

// BenchmarkSkylineGSS regenerates the Section VI result:
// GSS(D,q) = {g1, g4, g5, g7}, end to end through the database engine.
func BenchmarkSkylineGSS(b *testing.B) {
	db := gdb.New()
	if err := db.InsertAll(dataset.PaperDB()); err != nil {
		b.Fatal(err)
	}
	q := dataset.PaperQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.SkylineQuery(q, gdb.QueryOptions{})
		if err != nil || len(res.Skyline) != 4 {
			b.Fatalf("GSS size %d err %v", len(res.Skyline), err)
		}
	}
}

// BenchmarkTable4Diversity regenerates Table IV: diversity vectors of all
// six 2-subsets of the skyline.
func BenchmarkTable4Diversity(b *testing.B) {
	m := dataset.PaperPairwise()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, all, err := diversity.Exhaustive(m, 2, 0)
		if err != nil || len(all) != 6 {
			b.Fatalf("candidates %d err %v", len(all), err)
		}
	}
}

// BenchmarkTable5Ranking regenerates Table V: the winner {g1,g4} with
// val = 5.
func BenchmarkTable5Ranking(b *testing.B) {
	m := dataset.PaperPairwise()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, _, err := diversity.Exhaustive(m, 2, 0)
		if err != nil || best.Val != 5 {
			b.Fatalf("val=%d err=%v", best.Val, err)
		}
	}
}

// BenchmarkSkylineScaling is experiment E8: skyline query cost as the
// database grows (the efficiency evaluation the paper promises). At
// n >= 40 the unpruned full scan is benched against the bound-driven
// filter-and-refine pipeline; the pruned runs additionally report how
// many exact evaluations the bounds spared (pruned/op, evaluated/op).
func BenchmarkSkylineScaling(b *testing.B) {
	for _, n := range []int{10, 20, 40, 80} {
		db := gdb.New()
		if err := db.InsertAll(dataset.MoleculeDB(n, 5, 14, 1)); err != nil {
			b.Fatal(err)
		}
		q := dataset.MoleculeDB(1, 7, 8, 999)[0]
		opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 3000, MCSMaxNodes: 3000}}
		run := func(b *testing.B, opts gdb.QueryOptions) {
			var last gdb.QueryStats
			for i := 0; i < b.N; i++ {
				res, err := db.SkylineQuery(q, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Stats
			}
			b.ReportMetric(float64(last.Evaluated), "evaluated/op")
			b.ReportMetric(float64(last.Pruned), "pruned/op")
		}
		if n < 40 {
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { run(b, opts) })
			continue
		}
		b.Run(fmt.Sprintf("n=%d/unpruned", n), func(b *testing.B) { run(b, opts) })
		b.Run(fmt.Sprintf("n=%d/pruned", n), func(b *testing.B) {
			popts := opts
			popts.Prune = true
			run(b, popts)
		})
	}
}

// BenchmarkTopKScaling is the ranked analogue of E8: single-measure
// top-k query cost as the database grows. At n >= 40 the unpruned full
// scan is benched against the best-first bound-index evaluation with
// threshold-fed exact engines; the pruned runs additionally report how
// many exact scores the bounds and decision runs spared (pruned/op,
// evaluated/op).
func BenchmarkTopKScaling(b *testing.B) {
	for _, n := range []int{10, 20, 40, 80} {
		db := gdb.New()
		if err := db.InsertAll(dataset.MoleculeDB(n, 5, 14, 1)); err != nil {
			b.Fatal(err)
		}
		q := dataset.MoleculeDB(1, 7, 8, 999)[0]
		opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 3000, MCSMaxNodes: 3000}}
		run := func(b *testing.B, opts gdb.QueryOptions) {
			var last gdb.QueryStats
			for i := 0; i < b.N; i++ {
				res, err := db.TopKQuery(q, measure.DistEd{}, 5, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Stats
			}
			b.ReportMetric(float64(last.Evaluated), "evaluated/op")
			b.ReportMetric(float64(last.Pruned), "pruned/op")
		}
		if n < 40 {
			b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { run(b, opts) })
			continue
		}
		b.Run(fmt.Sprintf("n=%d/unpruned", n), func(b *testing.B) { run(b, opts) })
		b.Run(fmt.Sprintf("n=%d/pruned", n), func(b *testing.B) {
			popts := opts
			popts.Prune = true
			run(b, popts)
		})
	}
}

// BenchmarkPivotScaling measures what the metric pivot index adds on
// top of the signature-only ranked pruning of BenchmarkTopKScaling, on
// the workload signatures are blind to: one family of REWIRED molecule
// variants (dataset.RewiredClusters — identical label histograms,
// different structure, so the histogram bound between family members
// is 0 regardless of their true distance; think isomer databases).
// DistEd top-5 queries evaluate best-first with signature bounds alone
// ("sig", the tiers BENCH_topk.json records) versus with the
// triangle-inequality pivot tier ("pivot") versus pivot plus the
// cross-query score memo ("pivot+memo", warm after the first
// iteration). Engines run uncapped (the family graphs are small), so
// the pivot tier's upper bounds apply and the answers are the exact
// ones; Workers is pinned to 1 so evaluated/op is deterministic.
// evaluated/op counts graphs scored exactly — the pivot rows must come
// in under the sig rows; memo_hits/op shows the warm path replaying
// scores without engine work.
func BenchmarkPivotScaling(b *testing.B) {
	for _, n := range []int{40, 80} {
		gs := dataset.RewiredClusters(1, n, 6, 7, 5, 1)
		q := graph.Rewire(gs[0], 2, newGoRand(999))
		q.SetName("q0")
		opts := gdb.QueryOptions{Prune: true, Workers: 1}
		run := func(b *testing.B, db *gdb.DB) {
			var last gdb.QueryStats
			for i := 0; i < b.N; i++ {
				res, err := db.TopKQuery(q, measure.DistEd{}, 5, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Stats
			}
			b.ReportMetric(float64(last.Evaluated), "evaluated/op")
			b.ReportMetric(float64(last.Pruned), "pruned/op")
			b.ReportMetric(float64(last.PivotPruned), "pivot_pruned/op")
			b.ReportMetric(float64(last.PivotDists), "pivot_dists/op")
			b.ReportMetric(float64(last.MemoHits), "memo_hits/op")
		}
		pivotCfg := pivot.Config{Pivots: 16, QueryMaxNodes: -1}
		b.Run(fmt.Sprintf("n=%d/sig", n), func(b *testing.B) {
			db := gdb.New()
			if err := db.InsertAll(gs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			run(b, db)
		})
		b.Run(fmt.Sprintf("n=%d/pivot", n), func(b *testing.B) {
			db := gdb.New()
			if err := db.InsertAll(gs); err != nil {
				b.Fatal(err)
			}
			db.EnablePivots(pivotCfg).Wait()
			b.ResetTimer()
			run(b, db)
		})
		b.Run(fmt.Sprintf("n=%d/pivot+memo", n), func(b *testing.B) {
			db := gdb.New()
			if err := db.InsertAll(gs); err != nil {
				b.Fatal(err)
			}
			db.EnablePivots(pivotCfg).Wait()
			db.SetScoreMemo(gdb.NewScoreMemo(4096))
			b.ResetTimer()
			run(b, db)
		})
	}
}

// BenchmarkVectorScaling grows the pivot experiment to real collection
// sizes and adds the vector candidate tier: n molecule families of 50
// rewired variants each (identical label histograms within a family, so
// only structure distinguishes members), DistEd top-5 queries against a
// fresh rewiring of a family-0 member. Three tiers: signature bounds
// alone ("sig"), the triangle-inequality pivot tier ("pivot"), and the
// IVF partition under both ("vector"). All three return byte-identical
// answers; what changes is candidates_touched/op — the graphs the scan
// had to bound at all (collection size minus the members excluded
// wholesale by admissible cell floors). sig and pivot touch every graph
// every query; the vector tier's floor cutoff drops whole families
// without reading a signature, which is where the sublinear ns/op comes
// from. Workers is pinned to 1 so the counters are deterministic.
func BenchmarkVectorScaling(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		gs := dataset.RewiredClusters(n/25, 25, 4, 5, 5, 1)
		q := graph.Rewire(gs[0], 1, newGoRand(999))
		q.SetName("q0")
		opts := gdb.QueryOptions{Prune: true, Workers: 1}
		run := func(b *testing.B, db *gdb.DB) {
			var last gdb.QueryStats
			for i := 0; i < b.N; i++ {
				res, err := db.TopKQuery(q, measure.DistEd{}, 5, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Stats
			}
			b.ReportMetric(float64(db.Len()-last.VectorSkipped), "candidates_touched/op")
			b.ReportMetric(float64(last.Evaluated), "evaluated/op")
			b.ReportMetric(float64(last.VectorCells), "vector_cells/op")
			b.ReportMetric(float64(last.VectorFallbacks), "vector_fallbacks/op")
		}
		pivotCfg := pivot.Config{Pivots: 16, QueryMaxNodes: -1}
		vectorCfg := vector.Config{Dims: 32, Cells: n / 100}
		b.Run(fmt.Sprintf("n=%d/sig", n), func(b *testing.B) {
			db := gdb.New()
			if err := db.InsertAll(gs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			run(b, db)
		})
		b.Run(fmt.Sprintf("n=%d/pivot", n), func(b *testing.B) {
			db := gdb.New()
			if err := db.InsertAll(gs); err != nil {
				b.Fatal(err)
			}
			db.EnablePivots(pivotCfg).Wait()
			b.ResetTimer()
			run(b, db)
		})
		b.Run(fmt.Sprintf("n=%d/vector", n), func(b *testing.B) {
			db := gdb.New()
			if err := db.InsertAll(gs); err != nil {
				b.Fatal(err)
			}
			db.EnablePivots(pivotCfg).Wait()
			db.EnableVector(vectorCfg)
			b.ResetTimer()
			run(b, db)
		})
	}
}

// BenchmarkMutationMix measures the delta-maintenance layer's headline:
// query throughput under a write-heavy mix (10% mutations — one insert
// or delete per nine queries), end to end over HTTP against a 2-shard
// daemon. The "cold" arm disables delta maintenance, so every mutation
// invalidates the mutated shard's cached tables and ranked answers and
// the next queries rebuild them from scratch; the "delta" arm patches
// the cached state in place — one fresh row evaluation per insert
// instead of a full-shard rescan. Both arms return byte-identical
// answers (TestDeltaMatchesColdRecompute proves it); queries/sec is the
// number to compare, with the applied/fallback counters alongside.
// Queries alternate between unpruned skylines (complete tables, the
// maintainable kind) and default top-k (ranked answers) over two query
// graphs; mutations alternate inserting a fresh graph and deleting it
// again, so the collection stays at ~n.
func BenchmarkMutationMix(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		gs := dataset.RewiredClusters(n/25, 25, 4, 5, 5, 1)
		var qs []*graph.Graph
		for qi := 0; qi < 2; qi++ {
			q := graph.Rewire(gs[qi*13], 1, newGoRand(int64(900+qi)))
			q.SetName(fmt.Sprintf("q%d", qi))
			qs = append(qs, q)
		}
		mut := dataset.RewiredClusters(1, 1, 4, 5, 5, 77)[0]
		noPrune := false
		for _, arm := range []struct {
			name    string
			disable bool
		}{{"cold", true}, {"delta", false}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, arm.name), func(b *testing.B) {
				db := gdb.NewSharded(2)
				if err := db.InsertAll(gs); err != nil {
					b.Fatal(err)
				}
				s := server.New(db, server.Config{CacheSize: 64, DisableDelta: arm.disable})
				ts := httptest.NewServer(s.Handler())
				defer ts.Close()
				client := ts.Client()
				queries := func() {
					for j := 0; j < 9; j++ {
						q := qs[(j/2)%2]
						if j%2 == 0 {
							benchPost(b, client, ts.URL+"/query/skyline", server.QueryRequest{Graph: q, Prune: &noPrune})
						} else {
							benchPost(b, client, ts.URL+"/query/topk", server.QueryRequest{Graph: q, K: 3})
						}
					}
				}
				queries() // warm the caches: the mix measures maintenance, not first builds
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%2 == 0 {
						mut.SetName(fmt.Sprintf("mut%d", i))
						benchPost(b, client, ts.URL+"/graphs", server.InsertRequest{Graph: mut})
					} else {
						req, err := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/"+fmt.Sprintf("mut%d", i-1), nil)
						if err != nil {
							b.Fatal(err)
						}
						resp, err := client.Do(req)
						if err != nil {
							b.Fatal(err)
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					queries()
				}
				b.StopTimer()
				b.ReportMetric(float64(9*b.N)/b.Elapsed().Seconds(), "queries/sec")
				resp, err := client.Get(ts.URL + "/stats")
				if err != nil {
					b.Fatal(err)
				}
				var st server.StatsResponse
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				b.ReportMetric(float64(st.Cache.DeltaApplied), "delta_applied")
				b.ReportMetric(float64(st.Cache.DeltaFallbacks), "delta_fallbacks")
			})
		}
	}
}

// benchPost posts a JSON body and drains the response, failing the
// benchmark on any non-200.
func benchPost(b *testing.B, client *http.Client, url string, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}

// BenchmarkSkylineAlgos is experiment E9: BNL vs SFS vs D&C on identical
// synthetic point sets.
func BenchmarkSkylineAlgos(b *testing.B) {
	pts := syntheticPoints(2000, 3)
	for _, algo := range []struct {
		name string
		a    skyline.Algorithm
	}{{"BNL", skyline.BNL}, {"SFS", skyline.SFS}, {"DC", skyline.DivideAndConquer}} {
		b.Run(algo.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.a(pts)
			}
		})
	}
}

// BenchmarkGEDVariants is experiment E10: exact A* vs beam vs bipartite on
// one molecule pair.
func BenchmarkGEDVariants(b *testing.B) {
	pair := dataset.MoleculeDB(2, 7, 8, 5)
	g1, g2 := pair[0], pair[1]
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ged.Exact(g1, g2, ged.Options{})
		}
	})
	b.Run("beam10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ged.Beam(g1, g2, 10, nil)
		}
	})
	b.Run("bipartite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ged.Bipartite(g1, g2, nil)
		}
	})
	b.Run("lowerbound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ged.LowerBound(g1, g2)
		}
	})
}

// BenchmarkTopKRecall is experiment E11: the single-measure top-k baseline
// against the skyline reference.
func BenchmarkTopKRecall(b *testing.B) {
	db := gdb.New()
	if err := db.InsertAll(dataset.MoleculeDB(30, 5, 14, 21)); err != nil {
		b.Fatal(err)
	}
	q := dataset.MoleculeDB(1, 7, 8, 998)[0]
	opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 3000, MCSMaxNodes: 3000}}
	sky, err := db.SkylineQuery(q, opts)
	if err != nil {
		b.Fatal(err)
	}
	want := map[string]bool{}
	for _, p := range sky.Skyline {
		want[p.ID] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.TopKQuery(q, measure.DistEd{}, 5, opts)
		if err != nil {
			b.Fatal(err)
		}
		topk.Recall(res.Items, want)
	}
}

// BenchmarkDiversityAlgos is experiment E12: exhaustive vs greedy diversity
// selection on a 12-member skyline.
func BenchmarkDiversityAlgos(b *testing.B) {
	m := diversity.NewMatrix(12, 3)
	rng := newDetRand(31)
	for d := 0; d < 3; d++ {
		for i := 0; i < 12; i++ {
			for j := i + 1; j < 12; j++ {
				m.Set(d, i, j, rng.Float64())
			}
		}
	}
	b.Run("exhaustive-k3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := diversity.Exhaustive(m, 3, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy-k3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := diversity.Greedy(m, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMCSEngines compares the McGregor search against the greedy
// heuristic and the clique-based induced variant (ablation from DESIGN.md).
func BenchmarkMCSEngines(b *testing.B) {
	pair := dataset.MoleculeDB(2, 7, 8, 13)
	g1, g2 := pair[0], pair[1]
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mcs.Exact(g1, g2, mcs.Options{})
		}
	})
	b.Run("greedy", func(b *testing.B) {
		rng := newGoRand(1)
		for i := 0; i < b.N; i++ {
			mcs.Greedy(g1, g2, 5, rng)
		}
	})
}

// BenchmarkIsomorphism measures the VF2 matcher on molecule pairs.
func BenchmarkIsomorphism(b *testing.B) {
	g := dataset.MoleculeDB(1, 12, 12, 3)[0]
	h := g.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !graph.Isomorphic(g, h) {
			b.Fatal("clone not isomorphic")
		}
	}
}

func syntheticPoints(n, d int) []skyline.Point {
	rng := newDetRand(17)
	pts := make([]skyline.Point, n)
	for i := range pts {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = skyline.Point{ID: fmt.Sprintf("p%d", i), Vec: v}
	}
	return pts
}

type detRand struct{ s uint64 }

func newDetRand(seed uint64) *detRand { return &detRand{s: seed*2685821657736338717 + 1} }

func (r *detRand) Float64() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s>>11) / float64(1<<53)
}

// newGoRand adapts math/rand for the MCS greedy benchmark.
func newGoRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
