module skygraph

go 1.24
