GO ?= go

.PHONY: build test bench run-server vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

run-server:
	$(GO) run ./cmd/skygraphd -addr :8091 -cache 128
