GO ?= go

.PHONY: build test race fuzz bench bench-skyline bench-topk bench-pivot bench-vector bench-compare bench-vector-compare bench-incremental bench-incremental-compare run-server smoke smoke-restart smoke-chaos bench-fault vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzQueryHash -fuzztime=10s
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzLGFRoundTrip -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-skyline reruns experiment E8 (pruned vs unpruned skyline
# scaling) and records it as BENCH_skyline.json; the raw benchstat-
# consumable lines are preserved under .benchmarks[].raw. The run and
# the conversion are separate steps (no pipe) so a failing bench run
# fails the target instead of being masked; benchjson additionally
# errors on input with no benchmark lines.
bench-skyline:
	@set -e; trap 'rm -f BENCH_skyline.txt' EXIT; \
	$(GO) test -bench=SkylineScaling -benchmem -run=^$$ . > BENCH_skyline.txt; \
	$(GO) run ./cmd/benchjson < BENCH_skyline.txt > BENCH_skyline.json
	@cat BENCH_skyline.json

# bench-topk is the ranked-query analogue of bench-skyline: best-first
# pruned vs unpruned single-measure top-k scaling, recorded as
# BENCH_topk.json with evaluated/op + pruned/op metrics.
bench-topk:
	@set -e; trap 'rm -f BENCH_topk.txt' EXIT; \
	$(GO) test -bench=TopKScaling -benchmem -run=^$$ . > BENCH_topk.txt; \
	$(GO) run ./cmd/benchjson < BENCH_topk.txt > BENCH_topk.json
	@cat BENCH_topk.json

# bench-pivot records the metric-pivot-tier experiment: signature-only
# vs pivot vs pivot+memo ranked evaluation on the histogram-blind
# rewired-family workload, as BENCH_pivot.json.
bench-pivot:
	@set -e; trap 'rm -f BENCH_pivot.txt' EXIT; \
	$(GO) test -bench=PivotScaling -benchmem -run=^$$ . > BENCH_pivot.txt; \
	$(GO) run ./cmd/benchjson < BENCH_pivot.txt > BENCH_pivot.json
	@cat BENCH_pivot.json

# bench-vector records the candidate-generation-tier experiment at real
# collection sizes (n=1k/10k rewired molecule families): signature-only
# vs pivot vs pivot+vector ranked evaluation, as BENCH_vector.json.
# candidates_touched/op is the headline metric — the graphs the scan
# bounded at all; the sig and pivot rows touch the whole collection,
# the vector rows only the cells the admissible floors could not skip.
# The iteration count is pinned (setup dominates the wall clock; per-op
# variance at 20 iterations is already small).
bench-vector:
	@set -e; trap 'rm -f BENCH_vector.txt' EXIT; \
	$(GO) test -bench=VectorScaling -benchmem -benchtime=20x -run=^$$ . > BENCH_vector.txt; \
	$(GO) run ./cmd/benchjson < BENCH_vector.txt > BENCH_vector.json
	@cat BENCH_vector.json

# bench-incremental records the delta-maintenance experiment: a 10%
# mutation mix over warmed cached state (complete tables + ranked
# answers), cold invalidation vs in-place delta upgrade, at n=1k/10k.
# queries/sec is the headline metric; delta_applied/delta_fallbacks
# confirm the delta arm actually maintained rather than fell back.
# Iterations are pinned like bench-vector (setup dominates wall clock).
bench-incremental:
	@set -e; trap 'rm -f BENCH_incremental.txt' EXIT; \
	$(GO) test -bench=MutationMix -benchmem -benchtime=30x -run=^$$ . > BENCH_incremental.txt; \
	$(GO) run ./cmd/benchjson < BENCH_incremental.txt > BENCH_incremental.json
	@cat BENCH_incremental.json

# bench-incremental-compare guards the write-heavy path: re-runs the
# mutation-mix experiment and fails on a >20% ns/op regression against
# the committed BENCH_incremental.json (same-machine comparisons only).
bench-incremental-compare:
	@set -e; trap 'rm -f BENCH_incremental_new.txt BENCH_incremental_new.json' EXIT; \
	$(GO) test -bench=MutationMix -benchmem -benchtime=30x -run=^$$ . > BENCH_incremental_new.txt; \
	$(GO) run ./cmd/benchjson < BENCH_incremental_new.txt > BENCH_incremental_new.json; \
	$(GO) run ./cmd/benchjson -compare BENCH_incremental.json BENCH_incremental_new.json

# bench-compare re-runs the pivot experiment and fails on a >20% ns/op
# regression against the committed BENCH_pivot.json (same-machine
# comparisons only — absolute ns/op is hardware-specific).
bench-compare:
	@set -e; trap 'rm -f BENCH_pivot_new.txt BENCH_pivot_new.json' EXIT; \
	$(GO) test -bench=PivotScaling -benchmem -run=^$$ . > BENCH_pivot_new.txt; \
	$(GO) run ./cmd/benchjson < BENCH_pivot_new.txt > BENCH_pivot_new.json; \
	$(GO) run ./cmd/benchjson -compare BENCH_pivot.json BENCH_pivot_new.json

# bench-vector-compare is the vector-tier backslide guard: re-runs the
# scaling experiment and fails on a >20% ns/op regression against the
# committed BENCH_vector.json (same-machine comparisons only).
bench-vector-compare:
	@set -e; trap 'rm -f BENCH_vector_new.txt BENCH_vector_new.json' EXIT; \
	$(GO) test -bench=VectorScaling -benchmem -benchtime=20x -run=^$$ . > BENCH_vector_new.txt; \
	$(GO) run ./cmd/benchjson < BENCH_vector_new.txt > BENCH_vector_new.json; \
	$(GO) run ./cmd/benchjson -compare BENCH_vector.json BENCH_vector_new.json

run-server:
	$(GO) run ./cmd/skygraphd -addr :8091 -shards 4 -cache 128

# smoke boots skygraphd, fires a short mixed-traffic loadgen burst
# (failing on any request error) and asserts /metrics recorded it.
# SMOKE_DURATION/SMOKE_ADDR override the defaults (5s, 127.0.0.1:8191).
smoke:
	bash ./scripts/smoke.sh

# smoke-restart is the durability smoke test: insert-heavy loadgen
# burst against a -data-dir daemon, SIGTERM, restart on the same
# directory, and assert the graph count and a fixed skyline answer
# survived (plus live WAL/recovery metrics).
smoke-restart:
	bash ./scripts/smoke_restart.sh

# smoke-chaos is the resilience soak: the in-process chaos test under
# -race (failpoint storms + restarts, acked-mutation survival, answers
# byte-identical to a fault-free run), then the end-to-end script —
# live daemon, loadgen through the retrying client, HTTP-armed faults,
# SIGTERM mid-traffic, and an ack-log audit after the final restart.
smoke-chaos:
	$(GO) test -race -run TestChaosSoak ./pkg/client/ -v
	bash ./scripts/smoke_chaos.sh

# bench-fault measures the disarmed-failpoint fast path: Hit() on a
# disarmed point must stay a single atomic load (sub-ns/op, zero
# allocs), so leaving failpoints compiled into production paths is
# free. Compare BenchmarkHitDisarmed against any regression.
bench-fault:
	$(GO) test -bench='BenchmarkHit' -benchmem -run=^$$ ./internal/fault/
