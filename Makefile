GO ?= go

.PHONY: build test race fuzz bench run-server vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzQueryHash -fuzztime=10s
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzLGFRoundTrip -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

run-server:
	$(GO) run ./cmd/skygraphd -addr :8091 -shards 4 -cache 128
