GO ?= go

.PHONY: build test race fuzz bench bench-skyline bench-topk run-server vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzQueryHash -fuzztime=10s
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzLGFRoundTrip -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-skyline reruns experiment E8 (pruned vs unpruned skyline
# scaling) and records it as BENCH_skyline.json; the raw benchstat-
# consumable lines are preserved under .benchmarks[].raw. The run and
# the conversion are separate steps (no pipe) so a failing bench run
# fails the target instead of being masked; benchjson additionally
# errors on input with no benchmark lines.
bench-skyline:
	@set -e; trap 'rm -f BENCH_skyline.txt' EXIT; \
	$(GO) test -bench=SkylineScaling -benchmem -run=^$$ . > BENCH_skyline.txt; \
	$(GO) run ./cmd/benchjson < BENCH_skyline.txt > BENCH_skyline.json
	@cat BENCH_skyline.json

# bench-topk is the ranked-query analogue of bench-skyline: best-first
# pruned vs unpruned single-measure top-k scaling, recorded as
# BENCH_topk.json with evaluated/op + pruned/op metrics.
bench-topk:
	@set -e; trap 'rm -f BENCH_topk.txt' EXIT; \
	$(GO) test -bench=TopKScaling -benchmem -run=^$$ . > BENCH_topk.txt; \
	$(GO) run ./cmd/benchjson < BENCH_topk.txt > BENCH_topk.json
	@cat BENCH_topk.json

run-server:
	$(GO) run ./cmd/skygraphd -addr :8091 -shards 4 -cache 128
