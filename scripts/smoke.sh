#!/usr/bin/env bash
# Observability smoke test: boot skygraphd, drive it with a short
# loadgen burst (mixed skyline/topk/range/batch/mutation traffic),
# require zero request errors, then scrape /metrics and assert the
# request counters actually moved. CI runs this after the unit tests;
# locally: make smoke.
set -euo pipefail

DURATION="${SMOKE_DURATION:-5s}"
ADDR="${SMOKE_ADDR:-127.0.0.1:8191}"
WORK="$(mktemp -d)"
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/skygraphd" ./cmd/skygraphd
go build -o "$WORK/loadgen" ./cmd/loadgen

"$WORK/skygraphd" -addr "$ADDR" -shards 2 -cache 64 -pivots 3 -memo 4096 \
  -slow-query-ms 250 2>"$WORK/daemon.log" &
DPID=$!

# loadgen waits for /readyz itself; -fail-on-error makes any failed
# request fail the smoke run.
"$WORK/loadgen" -addr "$ADDR" -duration "$DURATION" -concurrency 4 \
  -seed 1 -fail-on-error -out "$WORK/report.json"

echo "--- verifying /metrics"
METRICS="$(curl -fsS "http://$ADDR/metrics")"

# Every query kind the mix drives must show a non-zero request counter,
# and the cascade/stage instrumentation must have recorded work.
for pat in \
  'skygraph_http_requests_total{endpoint="POST /query/skyline",code="200"}' \
  'skygraph_http_requests_total{endpoint="POST /query/topk",code="200"}' \
  'skygraph_http_requests_total{endpoint="POST /query/range",code="200"}' \
  'skygraph_http_requests_total{endpoint="POST /query/batch",code="200"}' \
  'skygraph_queries_total' \
  'skygraph_stage_seconds_total{stage="exact"}'
do
  line="$(grep -F "$pat" <<<"$METRICS" || true)"
  if [ -z "$line" ]; then
    echo "smoke: /metrics is missing $pat" >&2
    exit 1
  fi
  value="${line##* }"
  if [ "$value" = "0" ]; then
    echo "smoke: $pat is zero after the burst" >&2
    exit 1
  fi
done

# Write-heavy burst: 10% mutations against the warmed daemon. The
# cache must absorb at least some of those writes in place — a zero
# delta_applied after this means the maintenance path regressed into
# always falling back to invalidation.
echo "--- write-heavy burst (-mutate-pct 10)"
"$WORK/loadgen" -addr "$ADDR" -duration "$DURATION" -concurrency 4 \
  -seed 2 -mutate-pct 10 -fail-on-error -out "$WORK/report_mutate.json"

STATS="$(curl -fsS "http://$ADDR/stats")"
if ! grep -Eq '"delta_applied":[1-9]' <<<"$STATS"; then
  echo "smoke: no delta upgrades applied under the mutation burst" >&2
  echo "$STATS" >&2
  exit 1
fi

# The report must round-trip through benchjson -compare (against
# itself: zero regression by construction).
go run ./cmd/benchjson -compare "$WORK/report.json" "$WORK/report.json" >/dev/null
go run ./cmd/benchjson -compare "$WORK/report_mutate.json" "$WORK/report_mutate.json" >/dev/null

echo "smoke: OK"
