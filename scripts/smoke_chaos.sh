#!/usr/bin/env bash
# Chaos smoke test: boot skygraphd on a data directory with the fault
# admin endpoint enabled, drive mixed loadgen traffic through the
# retrying client (idempotency-keyed mutations, ack log on), and while
# the load runs: arm disk failpoints over HTTP, SIGTERM the daemon
# mid-traffic and restart it on the same directory. Afterwards, force
# the degraded-readonly state deterministically (persistent append
# fault + mutation attempts must 503, queries must keep answering,
# /stats must report the degradation), heal, restart once more and hold
# the daemon to the ack log: every acknowledged insert not later
# acknowledged-deleted must exist, every acknowledged delete must be
# gone, and the never-acknowledged degrade-probe insert must be absent.
# CI runs this after the unit tests; locally: make smoke-chaos.
set -euo pipefail

DURATION="${SMOKE_DURATION:-8s}"
ADDR="${SMOKE_ADDR:-127.0.0.1:8193}"
WORK="$(mktemp -d)"
DPID=""
LGPID=""
trap 'kill "$DPID" "$LGPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/skygraphd" ./cmd/skygraphd
go build -o "$WORK/loadgen" ./cmd/loadgen

start_daemon() {
  "$WORK/skygraphd" -addr "$ADDR" -shards 2 -cache 64 \
    -data-dir "$WORK/data" -fsync always -snapshot-every 2s \
    -fault-admin -degrade-after 2 -probe-every 50ms -retry-after 1s \
    2>>"$WORK/daemon.log" &
  DPID=$!
}

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "smoke-chaos: daemon did not become ready" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}

arm() {
  curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"spec\":\"$1\"}" "http://$ADDR/admin/fault" >/dev/null
}

start_daemon
wait_ready

# Mutation-heavy mixed traffic through the retrying client; the ack log
# is the ground truth the daemon is audited against at the end.
"$WORK/loadgen" -addr "$ADDR" -duration "$DURATION" -concurrency 4 \
  -seed 11 -mix 'skyline=2,topk=1,insert=4,delete=2' -retries 6 \
  -ack-log "$WORK/acks.jsonl" -out "$WORK/report.json" \
  2>"$WORK/loadgen.log" &
LGPID=$!

# Chaos while the load runs: an ENOSPC burst on the append path, then a
# SIGTERM + restart on the same directory, then an fsync-error burst.
sleep 1
echo "--- arming wal/append ENOSPC burst under live traffic"
arm 'wal/append=error:err=ENOSPC,limit=8'
sleep 1
arm 'wal/append=off'
sleep 0.5
echo "--- SIGTERM mid-traffic; restarting on the same -data-dir"
kill -TERM "$DPID"
wait "$DPID" || true
start_daemon
wait_ready
echo "--- arming wal/fsync EIO burst under live traffic"
arm 'wal/fsync=error:err=EIO,limit=5'
sleep 1
arm 'wal/fsync=off'

wait "$LGPID"
LGPID=""
cat "$WORK/loadgen.log" >&2

# Deterministic degraded-readonly drill: with a persistent append fault
# the daemon must stop accepting writes (503, not endless 500s) while
# queries keep serving, then heal once the fault clears.
echo "--- forcing degraded-readonly with a persistent append fault"
arm 'wal/append=error:err=ENOSPC'
PROBE='{"graph":{"name":"smoke-degrade-probe","vertices":["C","O"],"edges":[{"u":0,"v":1,"label":"-"}]}}'
for _ in 1 2 3; do
  CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d "$PROBE" "http://$ADDR/graphs")"
  if [ "$CODE" != 503 ]; then
    echo "smoke-chaos: mutation under persistent fault answered $CODE, want 503" >&2
    exit 1
  fi
done
STATE="$(curl -fsS "http://$ADDR/stats" | jq -r .health.state)"
if [ "$STATE" != degraded_readonly ]; then
  echo "smoke-chaos: health state is $STATE after repeated persist failures, want degraded_readonly" >&2
  exit 1
fi
QUERY='{"graph":{"name":"q","vertices":["C","O","C","N"],"edges":[{"u":0,"v":1,"label":"-"},{"u":1,"v":2,"label":"="},{"u":2,"v":3,"label":"-"}]}}'
QCODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d "$QUERY" "http://$ADDR/query/skyline")"
if [ "$QCODE" != 200 ]; then
  echo "smoke-chaos: query while degraded answered $QCODE, want 200" >&2
  exit 1
fi
if ! curl -fsS "http://$ADDR/metrics" | grep -q '^skygraph_health_degradations_total [1-9]'; then
  echo "smoke-chaos: /metrics did not record the degradation" >&2
  exit 1
fi
arm 'wal/append=off'
for _ in $(seq 1 100); do
  STATE="$(curl -fsS "http://$ADDR/stats" | jq -r .health.state)"
  [ "$STATE" != degraded_readonly ] && break
  sleep 0.1
done
if [ "$STATE" = degraded_readonly ]; then
  echo "smoke-chaos: daemon stuck in degraded-readonly after the fault cleared" >&2
  exit 1
fi

# Final restart, then audit the daemon against the ack log. Names whose
# last operation never got an ack are ambiguous (the mutation may or
# may not have landed — the client was told it failed either way) and
# are skipped; every unambiguous name is enforced.
echo "--- final restart; auditing acknowledged mutations"
kill -TERM "$DPID"
wait "$DPID" || true
start_daemon
wait_ready

curl -fsS "http://$ADDR/graphs" | jq -r '.names[]' | sort > "$WORK/present.txt"
jq -r '"\(.op) \(.name)"' "$WORK/acks.jsonl" > "$WORK/acklines.txt"
awk '
  $1 == "insert-attempt" { ia[$2]++ }
  $1 == "insert"         { i[$2]++; last[$2] = "insert" }
  $1 == "delete-attempt" { da[$2]++ }
  $1 == "delete"         { d[$2]++; last[$2] = "delete" }
  END {
    for (n in last) {
      if (ia[n] != i[n] || da[n] != d[n]) continue
      print last[n], n
    }
  }' "$WORK/acklines.txt" > "$WORK/expected.txt"

ACKED_INSERTS=0
ACKED_DELETES=0
while read -r op name; do
  if [ "$op" = insert ]; then
    ACKED_INSERTS=$((ACKED_INSERTS + 1))
    if ! grep -qx "$name" "$WORK/present.txt"; then
      echo "smoke-chaos: acknowledged insert $name lost across the chaos run" >&2
      exit 1
    fi
  else
    ACKED_DELETES=$((ACKED_DELETES + 1))
    if grep -qx "$name" "$WORK/present.txt"; then
      echo "smoke-chaos: acknowledged delete $name resurrected across the chaos run" >&2
      exit 1
    fi
  fi
done < "$WORK/expected.txt"

if [ "$ACKED_INSERTS" -lt 1 ]; then
  echo "smoke-chaos: the run produced no auditable acknowledged inserts" >&2
  exit 1
fi
if grep -qx "smoke-degrade-probe" "$WORK/present.txt"; then
  echo "smoke-chaos: never-acknowledged degrade-probe insert landed in the database" >&2
  exit 1
fi

kill -TERM "$DPID"
wait "$DPID" || true
DPID=""

echo "smoke-chaos: OK ($ACKED_INSERTS acked inserts survived, $ACKED_DELETES acked deletes stayed gone, degraded-readonly engaged and healed)"
