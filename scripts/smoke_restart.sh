#!/usr/bin/env bash
# Durability smoke test: boot skygraphd with a data directory, drive an
# insert-heavy loadgen burst, SIGTERM the daemon mid-life, restart it
# on the same directory and require that (a) /stats reports the same
# graph count, (b) a fixed skyline query returns the identical answer,
# and (c) /metrics shows the recovery actually replayed state. CI runs
# this after the unit tests; locally: make smoke-restart.
set -euo pipefail

DURATION="${SMOKE_DURATION:-5s}"
ADDR="${SMOKE_ADDR:-127.0.0.1:8192}"
WORK="$(mktemp -d)"
DPID=""
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/skygraphd" ./cmd/skygraphd
go build -o "$WORK/loadgen" ./cmd/loadgen

start_daemon() {
  "$WORK/skygraphd" -addr "$ADDR" -shards 2 -cache 64 \
    -data-dir "$WORK/data" -fsync always -snapshot-every 2s \
    2>>"$WORK/daemon.log" &
  DPID=$!
}

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "smoke-restart: daemon did not become ready" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}

start_daemon
wait_ready

# Insert-heavy burst so the WAL has real state to recover (no deletes:
# the daemon starts empty, and early deletes would 404 under
# -fail-on-error).
"$WORK/loadgen" -addr "$ADDR" -duration "$DURATION" -concurrency 4 \
  -seed 7 -mix 'skyline=2,topk=1,insert=6' -fail-on-error \
  -out "$WORK/report.json"

QUERY='{"graph":{"name":"q","vertices":["C","O","C","N"],"edges":[{"u":0,"v":1,"label":"-"},{"u":1,"v":2,"label":"="},{"u":2,"v":3,"label":"-"}]}}'

COUNT1="$(curl -fsS "http://$ADDR/stats" | jq .db.graphs)"
ANSWER1="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$QUERY" "http://$ADDR/query/skyline" | jq -cS .skyline)"
if [ "$COUNT1" -lt 1 ]; then
  echo "smoke-restart: no graphs inserted before the restart" >&2
  exit 1
fi

echo "--- SIGTERM after $COUNT1 graphs; restarting on the same -data-dir"
kill -TERM "$DPID"
wait "$DPID" || true

start_daemon
wait_ready

COUNT2="$(curl -fsS "http://$ADDR/stats" | jq .db.graphs)"
ANSWER2="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$QUERY" "http://$ADDR/query/skyline" | jq -cS .skyline)"

if [ "$COUNT1" != "$COUNT2" ]; then
  echo "smoke-restart: graph count changed across restart: $COUNT1 -> $COUNT2" >&2
  exit 1
fi
if [ "$ANSWER1" != "$ANSWER2" ]; then
  echo "smoke-restart: skyline answer changed across restart" >&2
  echo "before: $ANSWER1" >&2
  echo "after:  $ANSWER2" >&2
  exit 1
fi

# The restart must have recovered real state (snapshot graphs + WAL
# replay may split arbitrarily, but together they account for the
# pre-restart database), and the WAL series must be live.
RECOVERED="$(curl -fsS "http://$ADDR/stats" | jq '.durability.recovery_snapshot_graphs + .durability.recovery_replayed_records')"
if [ "$RECOVERED" -lt 1 ]; then
  echo "smoke-restart: recovery reported no snapshot graphs and no replayed records" >&2
  exit 1
fi
METRICS="$(curl -fsS "http://$ADDR/metrics")"
for pat in skygraph_wal_appends_total skygraph_wal_fsyncs_total skygraph_recovery_seconds; do
  if ! grep -q "^$pat" <<<"$METRICS"; then
    echo "smoke-restart: /metrics is missing $pat" >&2
    exit 1
  fi
done

kill -TERM "$DPID"
wait "$DPID" || true
DPID=""

echo "smoke-restart: OK ($COUNT1 graphs and the skyline answer survived the restart)"
