// Command experiments regenerates every table of the paper plus the
// extension experiments E8–E12 (the evaluation the paper promises as future
// work), printing paper-vs-measured values. See DESIGN.md for the
// experiment index.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E4    # run one experiment
//	experiments -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"skygraph/internal/dataset"
	"skygraph/internal/diversity"
	"skygraph/internal/gdb"
	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/mcs"
	"skygraph/internal/measure"
	"skygraph/internal/skyline"
	"skygraph/internal/topk"
)

type experiment struct {
	id, title string
	run       func()
}

func main() {
	runID := flag.String("run", "", "run a single experiment (e.g. E5)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := []experiment{
		{"E1", "Table I — hotel skyline (Example 1)", e1},
		{"E2", "Fig. 1 — measures on the reconstructed pair (Examples 2-4)", e2},
		{"E3", "Table II — |mcs(gi,q)| on the reconstructed database", e3},
		{"E4", "Table III — GCS vectors (DistEd, DistMcs, DistGu)", e4},
		{"E5", "Section VI — graph similarity skyline GSS(D,q)", e5},
		{"E6", "Table IV — diversity of all 2-subsets of GSS", e6},
		{"E7", "Table V — ranks, val(S) and the diversity winner", e7},
		{"E8", "Skyline size vs database size and dimension (promised eval)", e8},
		{"E9", "Skyline algorithms: BNL vs SFS vs D&C (promised eval)", e9},
		{"E10", "GED engines: exact vs beam vs bipartite (promised eval)", e10},
		{"E11", "Top-k single-measure recall of the skyline (promised eval)", e11},
		{"E12", "Diversity: exhaustive vs greedy (promised eval)", e12},
	}

	if *list {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	ran := false
	for _, e := range exps {
		if *runID != "" && !strings.EqualFold(*runID, e.id) {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.title)
		e.run()
		fmt.Println()
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *runID)
		os.Exit(1)
	}
}

func e1() {
	sky := skyline.Compute(dataset.Hotels())
	var got []string
	for _, p := range sky {
		got = append(got, p.ID)
	}
	fmt.Printf("paper:    skyline = {H2, H4, H6}\n")
	fmt.Printf("measured: skyline = {%s}\n", strings.Join(got, ", "))
}

func e2() {
	g1, g2 := dataset.Fig1Pair()
	s := measure.Compute(g1, g2, measure.Options{})
	fmt.Printf("%-10s %8s %8s\n", "measure", "paper", "measured")
	fmt.Printf("%-10s %8v %8v\n", "DistEd", 4, s.GED)
	fmt.Printf("%-10s %8v %8v\n", "|mcs|", 4, s.MCS)
	fmt.Printf("%-10s %8v %8v\n", "DistMcs", 0.33, dataset.Round2((measure.DistMcs{}).FromStats(s)))
	fmt.Printf("%-10s %8v %8v\n", "DistGu", 0.50, dataset.Round2((measure.DistGu{}).FromStats(s)))
}

func e3() {
	db := dataset.PaperDB()
	q := dataset.PaperQuery()
	fmt.Printf("%-6s %8s %10s\n", "pair", "paper", "measured")
	for i, g := range db {
		fmt.Printf("(%s,q) %8d %10d\n", g.Name(), dataset.PaperMcs[i], mcs.Size(g, q))
	}
}

func e4() {
	db := dataset.PaperDB()
	q := dataset.PaperQuery()
	want := dataset.PaperTable3()
	fmt.Printf("%-6s | %-18s | %-18s\n", "", "paper (Ed,Mcs,Gu)", "measured")
	for i, g := range db {
		vec := measure.ComputeGCS(g, q, measure.Options{})
		fmt.Printf("(%s,q) | %4.0f  %5.2f  %5.2f | %4.0f  %5.2f  %5.2f\n",
			g.Name(),
			want[i].Vec[0], want[i].Vec[1], want[i].Vec[2],
			vec[0], dataset.Round2(vec[1]), dataset.Round2(vec[2]))
	}
}

func paperSkyline() (gdb.SkylineResult, *gdb.DB) {
	db := gdb.New()
	if err := db.InsertAll(dataset.PaperDB()); err != nil {
		panic(err)
	}
	res, err := db.SkylineQuery(dataset.PaperQuery(), gdb.QueryOptions{})
	if err != nil {
		panic(err)
	}
	return res, db
}

func e5() {
	res, _ := paperSkyline()
	var got []string
	for _, p := range res.Skyline {
		got = append(got, p.ID)
	}
	fmt.Printf("paper:    GSS(D,q) = {g1, g4, g5, g7}\n")
	fmt.Printf("measured: GSS(D,q) = {%s}\n", strings.Join(got, ", "))
	fmt.Printf("paper domination witnesses: g7 ≻ g2, g5 ≻ g3, g1 ≻ g6\n")
	vec := map[string][]float64{}
	for _, p := range res.All {
		vec[p.ID] = p.Vec
	}
	for _, w := range []struct{ winner, loser string }{{"g7", "g2"}, {"g5", "g3"}, {"g1", "g6"}} {
		fmt.Printf("measured: %s ≻ %s = %v\n", w.winner, w.loser, skyline.Dominates(vec[w.winner], vec[w.loser]))
	}
}

func e6() {
	m := dataset.PaperPairwise()
	_, all, err := diversity.Exhaustive(m, 2, 0)
	if err != nil {
		panic(err)
	}
	// Present in Table IV's subset order (S1..S6), not val order.
	sort.Slice(all, func(a, b int) bool {
		return lexLess(all[a].Members, all[b].Members)
	})
	fmt.Printf("(pairwise matrix decoded from Table IV; dims: DistNEd, DistMcs, DistGu)\n")
	fmt.Printf("%-14s %7s %7s %7s\n", "subset", "v1", "v2", "v3")
	for _, c := range all {
		fmt.Printf("{%s, %s}%6.2f %7.2f %7.2f\n",
			dataset.PaperPairwiseIDs[c.Members[0]], dataset.PaperPairwiseIDs[c.Members[1]],
			c.Div[0], c.Div[1], c.Div[2])
	}
}

func e7() {
	m := dataset.PaperPairwise()
	best, all, err := diversity.Exhaustive(m, 2, 0)
	if err != nil {
		panic(err)
	}
	sort.Slice(all, func(a, b int) bool {
		return lexLess(all[a].Members, all[b].Members)
	})
	fmt.Printf("%-14s %4s %4s %4s %6s\n", "subset", "r1", "r2", "r3", "val")
	for _, c := range all {
		fmt.Printf("{%s, %s}%5d %4d %4d %6d\n",
			dataset.PaperPairwiseIDs[c.Members[0]], dataset.PaperPairwiseIDs[c.Members[1]],
			c.Ranks[0], c.Ranks[1], c.Ranks[2], c.Val)
	}
	fmt.Printf("paper:    winner 𝕊 = {g1, g4} with val = 5\n")
	fmt.Printf("measured: winner 𝕊 = {%s, %s} with val = %d\n",
		dataset.PaperPairwiseIDs[best.Members[0]], dataset.PaperPairwiseIDs[best.Members[1]], best.Val)
}

func e8() {
	fmt.Printf("(synthetic molecule database; measured only — the paper reports no numbers)\n")
	fmt.Printf("%6s %6s %14s %14s\n", "n", "dims", "skyline size", "fraction")
	for _, n := range []int{20, 50, 100} {
		db := gdb.New()
		if err := db.InsertAll(dataset.MoleculeDB(n, 5, 14, 1)); err != nil {
			panic(err)
		}
		// Independent query (disjoint seed): no database member is a near-
		// copy, so genuine trade-offs between the measures appear.
		q := dataset.MoleculeDB(1, 7, 8, 999)[0]
		for _, basis := range [][]measure.Measure{
			{measure.DistEd{}, measure.DistMcs{}},
			{measure.DistEd{}, measure.DistMcs{}, measure.DistGu{}},
			measure.Extended(), // d=6: + label and degree feature distances
		} {
			res, err := db.SkylineQuery(q, gdb.QueryOptions{
				Basis: basis,
				Eval:  measure.Options{GEDMaxNodes: 3000, MCSMaxNodes: 3000},
			})
			if err != nil {
				panic(err)
			}
			fmt.Printf("%6d %6d %14d %13.2f%%\n", n, len(basis), len(res.Skyline),
				100*float64(len(res.Skyline))/float64(n))
		}
	}
}

func e9() {
	res, db := paperSkyline()
	_ = res
	q := dataset.PaperQuery()
	algos := []struct {
		name string
		a    skyline.Algorithm
	}{{"BNL", skyline.BNL}, {"SFS", skyline.SFS}, {"D&C", skyline.DivideAndConquer}}
	// Pre-evaluate vectors once on a synthetic set for a fair algorithm-only
	// comparison.
	pts := syntheticPoints(5000, 3)
	fmt.Printf("%-5s %10s %14s  (5000 synthetic 3-d points)\n", "algo", "skyline", "time")
	for _, al := range algos {
		start := time.Now()
		sky := al.a(pts)
		fmt.Printf("%-5s %10d %14v\n", al.name, len(sky), time.Since(start))
	}
	for _, al := range algos {
		r, err := db.SkylineQuery(q, gdb.QueryOptions{Algorithm: al.a})
		if err != nil {
			panic(err)
		}
		fmt.Printf("paper DB via %-4s -> %d members (want 4)\n", al.name, len(r.Skyline))
	}
}

func e10() {
	rngDB := dataset.MoleculeDB(12, 7, 9, 5)
	pairs := 0
	var exactT, beamT, bipT time.Duration
	var beamErr, bipErr float64
	for i := 0; i < len(rngDB); i += 2 {
		g1, g2 := rngDB[i], rngDB[i+1]
		t0 := time.Now()
		ex := ged.Exact(g1, g2, ged.Options{})
		exactT += time.Since(t0)
		t0 = time.Now()
		bm := ged.Beam(g1, g2, 10, nil)
		beamT += time.Since(t0)
		t0 = time.Now()
		bp := ged.Bipartite(g1, g2, nil)
		bipT += time.Since(t0)
		beamErr += bm.Distance - ex.Distance
		bipErr += bp.Distance - ex.Distance
		pairs++
	}
	fmt.Printf("%-10s %14s %18s\n", "engine", "avg time", "avg overestimate")
	fmt.Printf("%-10s %14v %18.2f\n", "exact A*", exactT/time.Duration(pairs), 0.0)
	fmt.Printf("%-10s %14v %18.2f\n", "beam(10)", beamT/time.Duration(pairs), beamErr/float64(pairs))
	fmt.Printf("%-10s %14v %18.2f\n", "bipartite", bipT/time.Duration(pairs), bipErr/float64(pairs))
}

func e11() {
	db := gdb.New()
	n := 60
	if err := db.InsertAll(dataset.MoleculeDB(n, 5, 14, 21)); err != nil {
		panic(err)
	}
	// Independent query so the skyline is non-trivial (see E8).
	q := dataset.MoleculeDB(1, 7, 8, 998)[0]
	opts := gdb.QueryOptions{Eval: measure.Options{GEDMaxNodes: 3000, MCSMaxNodes: 3000}}
	sky, err := db.SkylineQuery(q, opts)
	if err != nil {
		panic(err)
	}
	want := map[string]bool{}
	for _, p := range sky.Skyline {
		want[p.ID] = true
	}
	fmt.Printf("skyline size: %d of %d\n", len(want), n)
	fmt.Printf("%-9s %8s %8s %8s\n", "measure", "k=|GSS|", "k=5", "k=10")
	for _, m := range []measure.Measure{measure.DistEd{}, measure.DistMcs{}, measure.DistGu{}} {
		var cells []string
		for _, k := range []int{len(want), 5, 10} {
			res, err := db.TopKQuery(q, m, k, opts)
			if err != nil {
				panic(err)
			}
			cells = append(cells, fmt.Sprintf("%8.2f", topk.Recall(res.Items, want)))
		}
		fmt.Printf("%-9s %s\n", m.Name(), strings.Join(cells, " "))
	}
	fmt.Printf("(recall < 1 shows a single measure misses skyline graphs — the paper's g3/g5 argument)\n")
}

func e12() {
	pts := 12
	m := diversity.NewMatrix(pts, 3)
	rng := newDetRand(31)
	for d := 0; d < 3; d++ {
		for i := 0; i < pts; i++ {
			for j := i + 1; j < pts; j++ {
				m.Set(d, i, j, rng.Float64())
			}
		}
	}
	for _, k := range []int{2, 3, 4} {
		t0 := time.Now()
		best, all, err := diversity.Exhaustive(m, k, 0)
		exT := time.Since(t0)
		if err != nil {
			panic(err)
		}
		t0 = time.Now()
		sel, err := diversity.Greedy(m, k)
		grT := time.Since(t0)
		if err != nil {
			panic(err)
		}
		gv := valOf(all, sel)
		fmt.Printf("k=%d: exhaustive val=%-4d (%d candidates, %v)   greedy val=%-4d (%v)\n",
			k, best.Val, len(all), exT, gv, grT)
	}
}

func valOf(all []diversity.Candidate, sel []int) int {
	for _, c := range all {
		if len(c.Members) == len(sel) {
			same := true
			for i := range sel {
				if c.Members[i] != sel[i] {
					same = false
					break
				}
			}
			if same {
				return c.Val
			}
		}
	}
	return -1
}

func syntheticPoints(n, d int) []skyline.Point {
	rng := newDetRand(17)
	pts := make([]skyline.Point, n)
	for i := range pts {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = skyline.Point{ID: fmt.Sprintf("p%d", i), Vec: v}
	}
	return pts
}

// newDetRand returns a deterministic pseudo-random source (xorshift) so the
// harness output is stable without importing math/rand here.
type detRand struct{ s uint64 }

func newDetRand(seed uint64) *detRand { return &detRand{s: seed*2685821657736338717 + 1} }

func (r *detRand) Float64() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s>>11) / float64(1<<53)
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

var _ = graph.New // keep the import for future extensions
