// Command reconstruct searches for database graphs satisfying ALL the
// constraints the paper states about its (lost) Fig. 3 figure — the
// query-side values of Tables II/III for the four skyline members AND the
// pairwise (GED, |mcs|) values decoded from Table IV:
//
//	vs q:       g1: |g|=6  mcs=4 ged=4   g4: |g|=6 mcs=3 ged=2
//	            g5: |g|=8  mcs=5 ged=3   g7: |g|=10 mcs=6 ged=4, q ⊆ g7
//	pairwise:   (g1,g4): ged=6 mcs=2   (g1,g5): ged=5 mcs=4
//	            (g1,g7): ged=7 mcs=4   (g4,g5): ged=4 mcs=3
//	            (g4,g7): ged=5 mcs=3   (g5,g7): ged=3 mcs=5
//
// The shipped reconstruction (internal/dataset.PaperDB) pins the query-side
// constraints exactly; this tool runs a randomized hill-climbing search
// over labeled edits of those graphs trying to satisfy the pairwise
// constraints too (DESIGN.md §7 lists this 13-constraint CSP as future
// work). It reports the best assignment found and the residual violations;
// a run reaching "violations = 0" would be a complete reconstruction.
//
// Usage:
//
//	reconstruct -steps 3000 -seed 1 [-restarts 4]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"skygraph/internal/dataset"
	"skygraph/internal/ged"
	"skygraph/internal/graph"
	"skygraph/internal/mcs"
)

// target encodes one (ged, mcs) constraint between two graph slots (-1 = q).
type target struct {
	a, b     int // indices into the candidate slice; -1 means the query
	ged, mcs int
}

var targets = []target{
	// Query-side (Tables II/III), slots: 0=g1, 1=g4, 2=g5, 3=g7.
	{0, -1, 4, 4},
	{1, -1, 2, 3},
	{2, -1, 3, 5},
	{3, -1, 4, 6},
	// Pairwise (decoded from Table IV).
	{0, 1, 6, 2},
	{0, 2, 5, 4},
	{0, 3, 7, 4},
	{1, 2, 4, 3},
	{1, 3, 5, 3},
	{2, 3, 3, 5},
}

// sizes the paper states for the four skyline members.
var wantSizes = []int{6, 6, 8, 10}

func main() {
	steps := flag.Int("steps", 2000, "hill-climbing steps per restart")
	seed := flag.Int64("seed", 1, "random seed")
	restarts := flag.Int("restarts", 3, "independent restarts")
	flag.Parse()

	q := dataset.PaperQuery()
	bestViol := -1
	var bestState []*graph.Graph
	for r := 0; r < *restarts; r++ {
		rng := rand.New(rand.NewSource(*seed + int64(r)))
		state := initialState()
		viol := violations(state, q)
		for s := 0; s < *steps && viol > 0; s++ {
			cand := mutateState(state, rng)
			if cand == nil {
				continue
			}
			cv := violations(cand, q)
			// Accept improvements and (occasionally) sideways moves.
			if cv < viol || (cv == viol && rng.Float64() < 0.3) {
				state, viol = cand, cv
			}
		}
		fmt.Printf("restart %d: residual violation score %d\n", r, viol)
		if bestViol < 0 || viol < bestViol {
			bestViol, bestState = viol, state
		}
		if viol == 0 {
			break
		}
	}

	fmt.Printf("\nbest residual violation score: %d (0 = full reconstruction)\n\n", bestViol)
	report(bestState, q)
	if bestViol == 0 {
		fmt.Println("\nSUCCESS: all Table II/III/IV constraints satisfied; consider")
		fmt.Println("promoting these graphs into internal/dataset.")
		for i, g := range bestState {
			fmt.Printf("\n# slot %d\n%s", i, graph.MarshalLGF(g))
		}
	}
}

// initialState starts from the shipped reconstruction's skyline members,
// which already satisfy the query-side constraints.
func initialState() []*graph.Graph {
	db := dataset.PaperDB()
	return []*graph.Graph{db[0], db[3], db[4], db[6]} // g1, g4, g5, g7
}

// violations scores a state: the sum of |measured − target| over all
// constraints plus heavy penalties for wrong sizes and a missing q ⊆ g7.
func violations(state []*graph.Graph, q *graph.Graph) int {
	v := 0
	for i, g := range state {
		d := g.Size() - wantSizes[i]
		if d < 0 {
			d = -d
		}
		v += 5 * d
	}
	if !graph.IsSupergraphOf(state[3], q) {
		v += 5
	}
	for _, t := range targets {
		ga := state[t.a]
		gb := q
		if t.b >= 0 {
			gb = state[t.b]
		}
		gd := int(ged.Distance(ga, gb))
		md := mcs.Size(ga, gb)
		v += abs(gd-t.ged) + abs(md-t.mcs)
	}
	return v
}

// mutateState clones one random graph and applies one random edit that
// preserves its size class (paired delete+insert, or a relabel).
func mutateState(state []*graph.Graph, rng *rand.Rand) []*graph.Graph {
	i := rng.Intn(len(state))
	g := state[i].Clone()
	edges := g.Edges()
	if len(edges) == 0 {
		return nil
	}
	vlabels := []string{"a", "b", "c", "d", "e", "f", "g", "z", "y"}
	elabels := []string{"s", "t", "u"}
	switch rng.Intn(3) {
	case 0: // move an edge: delete one, insert a fresh one
		e := edges[rng.Intn(len(edges))]
		g.RemoveEdge(e.U, e.V)
		for tries := 0; tries < 20; tries++ {
			u, v := rng.Intn(g.Order()), rng.Intn(g.Order())
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, elabels[rng.Intn(len(elabels))])
				break
			}
		}
		if g.Size() != state[i].Size() {
			return nil
		}
	case 1: // relabel an edge
		e := edges[rng.Intn(len(edges))]
		g.RelabelEdge(e.U, e.V, elabels[rng.Intn(len(elabels))])
	case 2: // relabel a vertex
		g.RelabelVertex(rng.Intn(g.Order()), vlabels[rng.Intn(len(vlabels))])
	}
	out := append([]*graph.Graph(nil), state...)
	out[i] = g
	return out
}

func report(state []*graph.Graph, q *graph.Graph) {
	names := []string{"g1", "g4", "g5", "g7"}
	fmt.Printf("%-10s %6s %6s %6s %6s\n", "constraint", "wGED", "GED", "wMCS", "MCS")
	for _, t := range targets {
		ga := state[t.a]
		gb := q
		label := names[t.a] + ",q"
		if t.b >= 0 {
			gb = state[t.b]
			label = names[t.a] + "," + names[t.b]
		}
		fmt.Printf("%-10s %6d %6d %6d %6d\n", label, t.ged, int(ged.Distance(ga, gb)), t.mcs, mcs.Size(ga, gb))
	}
	fmt.Printf("q ⊆ g7: %v\n", graph.IsSupergraphOf(state[3], q))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
