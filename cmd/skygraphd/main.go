// Command skygraphd is the skygraph query-serving daemon: it loads a
// graph database from LGF and serves similarity skyline, top-k and range
// queries over an HTTP/JSON API, with an LRU cache of query vector
// tables in front of the GED/MCS pair-evaluation hot path.
//
// Usage:
//
//	skygraphd -addr :8091 -db db.lgf -cache 128 -timeout 30s
//
// Endpoints:
//
//	POST   /query/skyline   graph similarity skyline GSS(D, q)
//	POST   /query/topk      single-measure top-k baseline
//	POST   /query/range     single-measure range query
//	GET    /graphs          list graph names
//	POST   /graphs          insert graph(s), invalidating the cache
//	GET    /graphs/{name}   fetch one graph as JSON
//	DELETE /graphs/{name}   delete a graph, invalidating the cache
//	GET    /stats           database, cache and request counters
//	GET    /healthz         liveness probe
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skygraph/internal/gdb"
	"skygraph/internal/measure"
	"skygraph/internal/server"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	dbPath := flag.String("db", "", "database LGF file (empty = start with an empty database)")
	cacheSize := flag.Int("cache", 128, "vector-table cache capacity (entries; 0 disables)")
	workers := flag.Int("workers", 0, "pair-evaluation workers per query (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "hard cap on request-supplied timeouts (0 = none)")
	inflight := flag.Int("inflight", 0, "max concurrently evaluating queries (0 = unlimited)")
	gedBudget := flag.Int64("ged-budget", 0, "default GED search-node cap (0 = exact)")
	mcsBudget := flag.Int64("mcs-budget", 0, "default MCS search-node cap (0 = exact)")
	flag.Parse()

	db := gdb.New()
	if *dbPath != "" {
		loaded, err := gdb.Load(*dbPath)
		if err != nil {
			log.Fatalf("skygraphd: loading %s: %v", *dbPath, err)
		}
		db = loaded
	}
	stats := db.Stats()
	log.Printf("skygraphd: serving %d graphs (%d vertices, %d edges) on %s",
		stats.Graphs, stats.Vertices, stats.Edges, *addr)

	srv := server.New(db, server.Config{
		CacheSize:      *cacheSize,
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxInflight:    *inflight,
		DefaultEval:    measure.Options{GEDMaxNodes: *gedBudget, MCSMaxNodes: *mcsBudget},
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("skygraphd: %v", err)
	case sig := <-sigCh:
		log.Printf("skygraphd: received %v, draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("skygraphd: shutdown: %v", err)
	}
	fmt.Println("skygraphd: stopped")
}
