// Command skygraphd is the skygraph query-serving daemon: it loads a
// graph database from LGF into N hash-routed shards and serves
// similarity skyline, top-k and range queries over an HTTP/JSON API.
// Queries evaluate per shard in parallel and merge (divide-and-conquer
// skyline combiner, per-shard top-k heaps); an LRU cache of per-shard
// query vector tables sits in front of the GED/MCS pair-evaluation hot
// path, so a mutation invalidates only its own shard's tables.
// -pivots attaches a background-maintained metric pivot index per
// shard (triangle-inequality GED bounds for the filter tiers); -memo
// adds the cross-query exact-score memo that survives mutations the
// table cache cannot; -vector-cells adds the vector candidate tier —
// per-graph embeddings in an IVF-style coarse partition that streams
// candidates best-first and skips whole cells whose admissible floor
// cannot beat the running threshold, with answers byte-identical to
// the plain scan.
//
// Usage:
//
//	skygraphd -addr :8091 -db db.lgf -shards 4 -cache 128 -timeout 30s
//
// Endpoints:
//
//	POST   /query/skyline   graph similarity skyline GSS(D, q)
//	POST   /query/topk      single-measure top-k baseline
//	POST   /query/range     single-measure range query
//	POST   /query/batch     many queries, one request and time budget
//	POST   /cache/warm      prebuild complete tables for given queries
//	GET    /graphs          list graph names
//	POST   /graphs          insert graph(s), invalidating owning shards
//	GET    /graphs/{name}   fetch one graph as JSON
//	DELETE /graphs/{name}   delete a graph, invalidating its shard
//	GET    /stats           database, shard, cache and request counters
//	GET    /metrics         Prometheus text exposition (format 0.0.4)
//	GET    /healthz         liveness probe
//	GET    /readyz          readiness probe (database loaded, pivot columns built)
//
// -slow-query-ms logs any query at or above the threshold as one JSON
// line (with its per-stage trace) to stderr; -pprof-addr serves
// net/http/pprof on a separate listener, kept off the query port.
//
// -data-dir makes the database durable: every acked mutation is
// write-ahead logged there (fsynced per -fsync), -snapshot-every cuts
// periodic atomic snapshots that let the log be reclaimed, and a
// restart with the same directory replays snapshot + log back into the
// exact pre-crash database. The listener answers 503 (and /readyz
// "recovering") until the replay completes. On SIGTERM the daemon
// drains HTTP, cuts a final snapshot and closes the log.
//
// Resilience knobs: -degrade-after K trips the daemon into
// degraded-readonly after K consecutive transient persist failures
// (mutations 503 with Retry-After, queries keep serving from memory)
// with a background probe every -probe-every re-arming writes;
// -max-inflight-queries sheds excess query load with 429;
// -retry-after sets the hint clients see on 503/429. -fault arms
// failpoints at startup (e.g. "wal/fsync=error:err=EIO,p=0.1") and
// -fault-admin exposes GET/POST /admin/fault for runtime control —
// both are for testing and chaos drills, never production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"skygraph/internal/fault"
	"skygraph/internal/gdb"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/server"
	"skygraph/internal/vector"
	"skygraph/internal/wal"
)

// parseFsync resolves the -fsync flag: "always", "never", or a
// duration ("100ms") selecting interval flushing with that period.
func parseFsync(v string) (wal.SyncPolicy, time.Duration, error) {
	switch v {
	case "always":
		return wal.SyncAlways, 0, nil
	case "never":
		return wal.SyncNever, 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("-fsync must be always, never or a positive duration, got %q", v)
	}
	return wal.SyncInterval, d, nil
}

// warmingHandler answers while recovery replays the data directory:
// liveness is fine, everything else (readiness included) is 503 so
// load balancers keep traffic away until the swap to the real handler.
func warmingHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"recovering"}`)
	})
	return mux
}

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	dbPath := flag.String("db", "", "database LGF file (empty = start with an empty database)")
	shards := flag.Int("shards", 1, "storage/evaluation shards (graphs are hash-routed by name)")
	shardWorkers := flag.Int("shard-workers", 0, "pair-evaluation workers per shard per query (0 = spread GOMAXPROCS across shards)")
	cacheSize := flag.Int("cache", 128, "vector-table cache capacity (entries, one per shard per query; 0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "hard cap on request-supplied timeouts (0 = none)")
	inflight := flag.Int("inflight", 0, "max concurrently evaluating shard tables (0 = unlimited; set >= -shards)")
	maxBatch := flag.Int("max-batch", 0, "max queries per /query/batch request (0 = default)")
	gedBudget := flag.Int64("ged-budget", 0, "default GED search-node cap (0 = exact)")
	mcsBudget := flag.Int64("mcs-budget", 0, "default MCS search-node cap (0 = exact)")
	pivots := flag.Int("pivots", 0, "metric pivot index: pivots per shard (0 = disabled); pivot distance columns are maintained in the background")
	pivotBudget := flag.Int64("pivot-budget", 0, "A* node cap per insert-time pivot distance (0 = package default, negative = exact)")
	pivotQueryBudget := flag.Int64("pivot-query-budget", 0, "A* node cap per query-to-pivot distance (0 = package default, negative = exact)")
	memoSize := flag.Int("memo", 0, "cross-query exact-score memo capacity (pair entries, 0 = disabled)")
	vectorCells := flag.Int("vector-cells", 0, "vector candidate tier: coarse partition cells per shard (0 = disabled); answers stay byte-identical, candidates stream best-first")
	vectorDims := flag.Int("vector-dims", 0, "vector embedding dimensions for the WL-histogram block (0 = package default of 32; needs -vector-cells)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log queries at or above this server-side duration as JSON lines to stderr (0 = disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; keep it private)")
	dataDir := flag.String("data-dir", "", "durable data directory: WAL + snapshots; a restart with the same directory recovers the database (empty = in-memory only)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, never, or a flush interval like 100ms")
	snapshotEvery := flag.Duration("snapshot-every", 5*time.Minute, "cut a snapshot (and reclaim covered WAL segments) this often; 0 disables periodic snapshots (needs -data-dir)")
	degradeAfter := flag.Int("degrade-after", 0, "consecutive transient persist failures before entering degraded-readonly (0 = package default of 3; needs -data-dir)")
	probeEvery := flag.Duration("probe-every", 0, "how often the degraded daemon probes the persistence path to re-arm writes (0 = package default of 500ms)")
	maxInflightQueries := flag.Int("max-inflight-queries", 0, "shed query requests beyond this many in flight with 429 (0 = unlimited; mutations are never shed)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on 503/429 responses (0 = 1s default)")
	faultSpec := flag.String("fault", "", "arm failpoints at startup, e.g. \"wal/fsync=error:err=EIO,p=0.1\" (testing only)")
	faultAdmin := flag.Bool("fault-admin", false, "expose GET/POST /admin/fault for runtime failpoint control (testing only; keep off in production)")
	delta := flag.Bool("delta", true, "maintain cached tables and ranked answers in place across mutations (false = invalidate on every mutation)")
	flag.Parse()

	syncPolicy, syncEvery, err := parseFsync(*fsync)
	if err != nil {
		log.Fatalf("skygraphd: %v", err)
	}
	if *faultSpec != "" {
		if err := fault.Configure(*faultSpec); err != nil {
			log.Fatalf("skygraphd: -fault: %v", err)
		}
		log.Printf("skygraphd: armed %d failpoint(s) from -fault (testing mode)", fault.Armed())
	}

	// The listener comes up before recovery so orchestrators can probe
	// /healthz from the start; every other route answers 503 until the
	// real handler is swapped in below.
	var handler atomic.Value // http.Handler
	handler.Store(warmingHandler())
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { handler.Load().(http.Handler).ServeHTTP(w, r) }),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	var db *gdb.Sharded
	var durable *gdb.Durable
	if *dataDir != "" {
		durable, err = gdb.OpenDurable(gdb.DurableOptions{
			Dir:       *dataDir,
			Shards:    *shards,
			Sync:      syncPolicy,
			SyncEvery: syncEvery,
		})
		if err != nil {
			log.Fatalf("skygraphd: opening %s: %v", *dataDir, err)
		}
		db = durable.DB
		rec := durable.Recovery()
		log.Printf("skygraphd: recovered %s in %s: %d graphs from snapshot, %d WAL records replayed (repaired %d bytes, dropped %d segments)",
			*dataDir, rec.Duration.Round(time.Millisecond), rec.SnapshotGraphs, rec.ReplayedRecords, rec.RepairedBytes, rec.DroppedSegments)
		if *dbPath != "" && db.Len() == 0 {
			// Bootstrap an empty data directory from the LGF file; the
			// inserts flow through the WAL like any mutation.
			loaded, err := gdb.Load(*dbPath)
			if err != nil {
				log.Fatalf("skygraphd: loading %s: %v", *dbPath, err)
			}
			if err := db.InsertAll(loaded.Graphs()); err != nil {
				log.Fatalf("skygraphd: importing %s: %v", *dbPath, err)
			}
			log.Printf("skygraphd: imported %d graphs from %s into %s", db.Len(), *dbPath, *dataDir)
		}
	} else {
		db = gdb.NewSharded(*shards)
		if *dbPath != "" {
			loaded, err := gdb.LoadSharded(*dbPath, *shards)
			if err != nil {
				log.Fatalf("skygraphd: loading %s: %v", *dbPath, err)
			}
			db = loaded
		}
	}
	if *pivots > 0 {
		db.EnablePivots(pivot.Config{Pivots: *pivots, MaxNodes: *pivotBudget, QueryMaxNodes: *pivotQueryBudget})
	}
	if *memoSize > 0 {
		db.EnableScoreMemo(*memoSize)
	}
	if *vectorCells > 0 {
		// After EnablePivots (so the embeddings carry pivot-distance
		// blocks) and after recovery (so every recovered graph is
		// embedded): the index feeds from the already-loaded shards and
		// tracks mutations synchronously from here on.
		db.EnableVector(vector.Config{Dims: *vectorDims, Cells: *vectorCells})
	}
	stats := db.Stats()
	log.Printf("skygraphd: serving %d graphs (%d vertices, %d edges) across %d shards on %s",
		stats.Graphs, stats.Vertices, stats.Edges, db.NumShards(), *addr)

	srv := server.New(db, server.Config{
		CacheSize:          *cacheSize,
		Workers:            *shardWorkers,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxInflight:        *inflight,
		MaxBatch:           *maxBatch,
		DefaultEval:        measure.Options{GEDMaxNodes: *gedBudget, MCSMaxNodes: *mcsBudget},
		SlowQueryThreshold: time.Duration(*slowQueryMS) * time.Millisecond,
		Durable:            durable,
		DegradeAfter:       *degradeAfter,
		ProbeEvery:         *probeEvery,
		MaxInflightQueries: *maxInflightQueries,
		RetryAfter:         *retryAfter,
		FaultAdmin:         *faultAdmin,
		DisableDelta:       !*delta,
	})
	handler.Store(srv.Handler()) // recovery done: start serving for real

	snapStop := make(chan struct{})
	snapDone := make(chan struct{})
	if durable != nil && *snapshotEvery > 0 {
		go func() {
			defer close(snapDone)
			t := time.NewTicker(*snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := durable.Snapshot(); err != nil {
						log.Printf("skygraphd: snapshot: %v", err)
					}
				case <-snapStop:
					return
				}
			}
		}()
	} else {
		close(snapDone)
	}

	if *pprofAddr != "" {
		// pprof gets its own mux and listener so profiling endpoints
		// never share the query port (or its inflight accounting).
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("skygraphd: pprof on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("skygraphd: pprof: %v", err)
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("skygraphd: %v", err)
	case sig := <-sigCh:
		log.Printf("skygraphd: received %v, draining", sig)
	}

	// Shutdown order matters for durability: drain HTTP first so no new
	// mutations arrive, then cut a final snapshot (making the next
	// restart replay-free), and only then flush and close the WAL — a
	// mutation acked before the drain finished is on disk either way.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("skygraphd: shutdown: %v", err)
	}
	srv.Close() // stop the health probe before the WAL goes away
	close(snapStop)
	<-snapDone
	if durable != nil {
		if err := durable.Snapshot(); err != nil {
			log.Printf("skygraphd: final snapshot: %v", err)
		}
		if err := durable.Close(); err != nil {
			log.Printf("skygraphd: closing wal: %v", err)
		}
	}
	fmt.Println("skygraphd: stopped")
}
