// Command skygraphd is the skygraph query-serving daemon: it loads a
// graph database from LGF into N hash-routed shards and serves
// similarity skyline, top-k and range queries over an HTTP/JSON API.
// Queries evaluate per shard in parallel and merge (divide-and-conquer
// skyline combiner, per-shard top-k heaps); an LRU cache of per-shard
// query vector tables sits in front of the GED/MCS pair-evaluation hot
// path, so a mutation invalidates only its own shard's tables.
// -pivots attaches a background-maintained metric pivot index per
// shard (triangle-inequality GED bounds for the filter tiers); -memo
// adds the cross-query exact-score memo that survives mutations the
// table cache cannot.
//
// Usage:
//
//	skygraphd -addr :8091 -db db.lgf -shards 4 -cache 128 -timeout 30s
//
// Endpoints:
//
//	POST   /query/skyline   graph similarity skyline GSS(D, q)
//	POST   /query/topk      single-measure top-k baseline
//	POST   /query/range     single-measure range query
//	POST   /query/batch     many queries, one request and time budget
//	POST   /cache/warm      prebuild complete tables for given queries
//	GET    /graphs          list graph names
//	POST   /graphs          insert graph(s), invalidating owning shards
//	GET    /graphs/{name}   fetch one graph as JSON
//	DELETE /graphs/{name}   delete a graph, invalidating its shard
//	GET    /stats           database, shard, cache and request counters
//	GET    /metrics         Prometheus text exposition (format 0.0.4)
//	GET    /healthz         liveness probe
//	GET    /readyz          readiness probe (database loaded, pivot columns built)
//
// -slow-query-ms logs any query at or above the threshold as one JSON
// line (with its per-stage trace) to stderr; -pprof-addr serves
// net/http/pprof on a separate listener, kept off the query port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skygraph/internal/gdb"
	"skygraph/internal/measure"
	"skygraph/internal/pivot"
	"skygraph/internal/server"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	dbPath := flag.String("db", "", "database LGF file (empty = start with an empty database)")
	shards := flag.Int("shards", 1, "storage/evaluation shards (graphs are hash-routed by name)")
	shardWorkers := flag.Int("shard-workers", 0, "pair-evaluation workers per shard per query (0 = spread GOMAXPROCS across shards)")
	cacheSize := flag.Int("cache", 128, "vector-table cache capacity (entries, one per shard per query; 0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "hard cap on request-supplied timeouts (0 = none)")
	inflight := flag.Int("inflight", 0, "max concurrently evaluating shard tables (0 = unlimited; set >= -shards)")
	maxBatch := flag.Int("max-batch", 0, "max queries per /query/batch request (0 = default)")
	gedBudget := flag.Int64("ged-budget", 0, "default GED search-node cap (0 = exact)")
	mcsBudget := flag.Int64("mcs-budget", 0, "default MCS search-node cap (0 = exact)")
	pivots := flag.Int("pivots", 0, "metric pivot index: pivots per shard (0 = disabled); pivot distance columns are maintained in the background")
	pivotBudget := flag.Int64("pivot-budget", 0, "A* node cap per insert-time pivot distance (0 = package default, negative = exact)")
	pivotQueryBudget := flag.Int64("pivot-query-budget", 0, "A* node cap per query-to-pivot distance (0 = package default, negative = exact)")
	memoSize := flag.Int("memo", 0, "cross-query exact-score memo capacity (pair entries, 0 = disabled)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log queries at or above this server-side duration as JSON lines to stderr (0 = disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; keep it private)")
	flag.Parse()

	db := gdb.NewSharded(*shards)
	if *dbPath != "" {
		loaded, err := gdb.LoadSharded(*dbPath, *shards)
		if err != nil {
			log.Fatalf("skygraphd: loading %s: %v", *dbPath, err)
		}
		db = loaded
	}
	if *pivots > 0 {
		db.EnablePivots(pivot.Config{Pivots: *pivots, MaxNodes: *pivotBudget, QueryMaxNodes: *pivotQueryBudget})
	}
	if *memoSize > 0 {
		db.EnableScoreMemo(*memoSize)
	}
	stats := db.Stats()
	log.Printf("skygraphd: serving %d graphs (%d vertices, %d edges) across %d shards on %s",
		stats.Graphs, stats.Vertices, stats.Edges, db.NumShards(), *addr)

	srv := server.New(db, server.Config{
		CacheSize:          *cacheSize,
		Workers:            *shardWorkers,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxInflight:        *inflight,
		MaxBatch:           *maxBatch,
		DefaultEval:        measure.Options{GEDMaxNodes: *gedBudget, MCSMaxNodes: *mcsBudget},
		SlowQueryThreshold: time.Duration(*slowQueryMS) * time.Millisecond,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// pprof gets its own mux and listener so profiling endpoints
		// never share the query port (or its inflight accounting).
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("skygraphd: pprof on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("skygraphd: pprof: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("skygraphd: %v", err)
	case sig := <-sigCh:
		log.Printf("skygraphd: received %v, draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("skygraphd: shutdown: %v", err)
	}
	fmt.Println("skygraphd: stopped")
}
