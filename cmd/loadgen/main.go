// Command loadgen drives a running skygraphd with a configurable mix
// of skyline, top-k, range, batch and mutation traffic and reports
// client-side latency distributions. It is the load side of the
// observability layer: run it against a daemon, then read the server's
// /metrics and slow-query log against loadgen's own percentiles.
//
// Two pacing modes:
//
//   - closed loop (default): -concurrency workers each issue requests
//     back to back, so offered load adapts to server latency;
//   - open loop (-qps > 0): requests start on a fixed schedule
//     regardless of completions, exposing queueing collapse the closed
//     loop hides.
//
// The workload is deterministic from -seed: query graphs are mutated
// clones of a seeded molecule corpus, so two runs against the same
// database offer identical request streams. Inserts add loadgen-owned
// graphs (never touching the preloaded corpus) and deletes only ever
// remove graphs a previous insert of the same run created.
//
// The -out report is a cmd/benchjson document — one benchmark entry
// per query kind plus an aggregate — so regression gating reuses the
// existing tooling:
//
//	loadgen -addr :8091 -duration 30s -out new.json
//	benchjson -compare old.json new.json
//
// Requests go through pkg/client, so failures come back typed and the
// report breaks errors out by class (429 / 503 / timeout / 5xx / 4xx /
// transport) instead of lumping every non-2xx together — essential for
// reading a chaos run, where "the server shed load" and "the server
// lost the disk" are different findings. -retries > 1 turns on the
// client's retry loop (mutations stay safe: inserts and deletes carry
// idempotency keys), and -ack-log records one line per acknowledged
// mutation ("insert NAME" / "delete NAME" as JSON) so an external
// checker can hold the daemon to its acks across crashes and restarts.
//
// -mutate-pct is a shorthand for write-heavy runs: it overrides -mix so
// the given percent of requests are mutations (split evenly between
// insert and delete) and reads share the remainder 4:3:2:1 across
// skyline/topk/range/batch. The summary and report then carry the
// server cache's movement over the run — hit ratio, delta_applied,
// delta_fallbacks — read from /stats before and after, so a run shows
// directly whether delta maintenance absorbed the writes or the cache
// thrashed.
//
// Usage:
//
//	loadgen -addr :8091 -duration 10s -concurrency 8 \
//	        -mix skyline=4,topk=3,range=2,batch=1,insert=1,delete=1
//	loadgen -addr :8091 -duration 10s -mutate-pct 10
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skygraph/internal/graph"
	"skygraph/internal/server"
	"skygraph/pkg/client"
)

// errClasses is the fixed error-class vocabulary, in report order.
var errClasses = []string{"429", "503", "timeout", "5xx", "4xx", "transport"}

// classify buckets a request error for the report. Budget-exhausted
// errors wrap the underlying failure, so they classify as that failure.
func classify(err error) string {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		switch {
		case apiErr.Status == http.StatusTooManyRequests:
			return "429"
		case apiErr.Status == http.StatusServiceUnavailable:
			return "503"
		case apiErr.Status == http.StatusGatewayTimeout:
			return "timeout"
		case apiErr.Status >= 500:
			return "5xx"
		default:
			return "4xx"
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	return "transport"
}

// opKinds is the fixed op vocabulary, in report order.
var opKinds = []string{"skyline", "topk", "range", "batch", "insert", "delete"}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8091", "skygraphd base URL (a bare :port is completed to http://127.0.0.1:port)")
	duration := flag.Duration("duration", 10*time.Second, "how long to offer load")
	concurrency := flag.Int("concurrency", 4, "closed-loop workers (also the in-flight cap in open-loop mode)")
	qps := flag.Float64("qps", 0, "open-loop target request rate (0 = closed loop)")
	mixSpec := flag.String("mix", "skyline=4,topk=3,range=2,batch=1,insert=1,delete=1", "comma-separated kind=weight traffic mix (kinds: skyline, topk, range, batch, insert, delete)")
	mutatePct := flag.Int("mutate-pct", -1, "percent of traffic that is mutations, split evenly insert/delete; overrides -mix, reads share the remainder 4:3:2:1 skyline/topk/range/batch (-1 = use -mix)")
	seed := flag.Int64("seed", 1, "workload seed (request stream is deterministic given the seed)")
	corpus := flag.Int("corpus", 64, "seeded molecule corpus size query graphs are mutated from")
	dbSize := flag.Int("db-size", 0, "bulk-insert a synthetic collection of this many graphs before offering load (0 = use the daemon's existing database); deterministic from -seed, names are prefixed loadgen-db-")
	k := flag.Int("k", 5, "k for top-k requests")
	radius := flag.Float64("radius", 6, "radius for range requests")
	batchSize := flag.Int("batch-size", 4, "queries per batch request")
	timeout := flag.Duration("timeout", 30*time.Second, "client-side per-attempt timeout (propagated to the server as its deadline)")
	retries := flag.Int("retries", 1, "client attempts per request, first included (1 = no retries; >1 retries transient failures with backoff, mutations under idempotency keys)")
	ackLogPath := flag.String("ack-log", "", "append one JSON line per acknowledged mutation here, for post-run durability auditing (empty = disabled)")
	waitReady := flag.Duration("wait-ready", 30*time.Second, "wait up to this long for /readyz before starting (0 = skip the check)")
	out := flag.String("out", "", "write the benchjson-compatible JSON report here (empty = stdout)")
	failOnError := flag.Bool("fail-on-error", false, "exit nonzero when any request failed")
	flag.Parse()

	base := *addr
	if strings.HasPrefix(base, ":") {
		base = "127.0.0.1" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fatalf("%v", err)
	}
	if *mutatePct >= 0 {
		if *mutatePct > 100 {
			fatalf("-mutate-pct %d out of range [0,100]", *mutatePct)
		}
		mix = mutateMix(*mutatePct)
	}

	if *waitReady > 0 {
		if err := awaitReady(&http.Client{Timeout: 5 * time.Second}, base, *waitReady); err != nil {
			fatalf("%v", err)
		}
	}

	cl := client.New(base, client.Options{
		AttemptTimeout: *timeout,
		MaxAttempts:    *retries,
	})
	var acks *ackLog
	if *ackLogPath != "" {
		f, err := os.Create(*ackLogPath)
		if err != nil {
			fatalf("%v", err)
		}
		acks = &ackLog{f: f}
		defer f.Close()
	}

	if *dbSize > 0 {
		if err := seedDatabase(cl, *seed, *dbSize); err != nil {
			fatalf("seeding %d graphs: %v", *dbSize, err)
		}
	}

	gen := newWorkload(*seed, *corpus, *k, *radius, *batchSize)
	rec := newRecorder()
	before := serverStats(cl)
	start := time.Now()
	if *qps > 0 {
		runOpenLoop(cl, gen, mix, rec, acks, *duration, *qps, *concurrency)
	} else {
		runClosedLoop(cl, gen, mix, rec, acks, *duration, *concurrency)
	}
	elapsed := time.Since(start)
	cw := cacheDelta(before, serverStats(cl))

	doc := rec.report(base, elapsed, *concurrency, *qps, cw)
	if *mutatePct >= 0 {
		doc.Context["mutate-pct"] = fmt.Sprintf("%d", *mutatePct)
	}
	rec.printSummary(os.Stderr, elapsed, cw)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("writing report: %v", err)
	}
	if *failOnError && rec.totalErrors() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d request(s) failed\n", rec.totalErrors())
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}

// parseMix parses "skyline=4,topk=3,..." into per-kind weights.
func parseMix(spec string) (map[string]int, error) {
	known := make(map[string]bool, len(opKinds))
	for _, k := range opKinds {
		known[k] = true
	}
	mix := map[string]int{}
	total := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || !known[name] {
			return nil, fmt.Errorf("bad mix entry %q (want kind=weight with kind one of %s)", part, strings.Join(opKinds, ", "))
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		mix[name] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return mix, nil
}

// mutateMix builds the -mutate-pct preset: pct percent of requests are
// mutations (split evenly insert/delete), the rest are reads in the
// canonical 4:3:2:1 skyline/topk/range/batch ratio. Weights are scaled
// so both splits are exact in integers.
func mutateMix(pct int) map[string]int {
	read := 100 - pct
	return map[string]int{
		"insert":  pct * 5,
		"delete":  pct * 5,
		"skyline": read * 4,
		"topk":    read * 3,
		"range":   read * 2,
		"batch":   read * 1,
	}
}

// serverStats fetches /stats, or nil when the daemon cannot answer —
// the run proceeds either way, only the cache digest goes missing.
func serverStats(cl *client.Client) *server.StatsResponse {
	st, err := cl.Stats(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: /stats unavailable: %v\n", err)
		return nil
	}
	return st
}

// cacheWindow is the server-side cache movement across the run: how the
// offered load hit, missed, and — under mutations — how often the cache
// absorbed a write in place versus dropping entries.
type cacheWindow struct {
	hits, misses   uint64
	deltaApplied   uint64
	deltaFallbacks uint64
}

// hitRatio is hits over lookups in the window; 0 when idle.
func (cw *cacheWindow) hitRatio() float64 {
	if total := cw.hits + cw.misses; total > 0 {
		return float64(cw.hits) / float64(total)
	}
	return 0
}

// cacheDelta diffs two /stats snapshots. Counters are monotonic, so a
// plain subtraction isolates this run's contribution; nil when either
// snapshot is missing.
func cacheDelta(before, after *server.StatsResponse) *cacheWindow {
	if before == nil || after == nil {
		return nil
	}
	return &cacheWindow{
		hits:           after.Cache.Hits - before.Cache.Hits,
		misses:         after.Cache.Misses - before.Cache.Misses,
		deltaApplied:   after.Cache.DeltaApplied - before.Cache.DeltaApplied,
		deltaFallbacks: after.Cache.DeltaFallbacks - before.Cache.DeltaFallbacks,
	}
}

// awaitReady polls GET /readyz until the daemon reports ready.
func awaitReady(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon at %s not reachable within %s: %v", base, budget, err)
			}
			return fmt.Errorf("daemon at %s not ready within %s", base, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// seedDatabase bulk-inserts a deterministic synthetic collection so a
// fresh daemon can be driven at a chosen scale (e.g. -db-size 10000 to
// exercise the vector tier) without preparing an LGF file. Graphs go in
// batches of 256 under idempotency keys, so an interrupted or retried
// seeding pass converges instead of 409-ing; names already present
// (a previous run's collection) fail the pass, which is the right
// answer — mixing two differently-seeded collections would make the
// workload non-reproducible.
func seedDatabase(cl *client.Client, seed int64, n int) error {
	rng := rand.New(rand.NewSource(seed + 7))
	const chunk = 256
	start := time.Now()
	for off := 0; off < n; off += chunk {
		m := chunk
		if n-off < m {
			m = n - off
		}
		gs := make([]*graph.Graph, m)
		for i := range gs {
			g := graph.Molecule(5+rng.Intn(4), rng)
			g.SetName(fmt.Sprintf("loadgen-db-%06d", off+i))
			gs[i] = g
		}
		req := server.InsertRequest{
			Graphs:         gs,
			IdempotencyKey: fmt.Sprintf("loadgen-seed-%d-%06d", seed, off),
		}
		if _, err := cl.Insert(context.Background(), req); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: seeded %d graphs in %s\n", n, time.Since(start).Round(time.Millisecond))
	return nil
}

// workload produces the deterministic request stream: query graphs are
// mutated clones of a fixed molecule corpus, insert graphs are fresh
// molecules owned by this run.
type workload struct {
	corpus    []*graph.Graph
	k         int
	radius    float64
	batchSize int

	nextInsert atomic.Int64
	insertedMu sync.Mutex
	inserted   []string
}

func newWorkload(seed int64, corpusSize, k int, radius float64, batchSize int) *workload {
	rng := rand.New(rand.NewSource(seed))
	corpus := make([]*graph.Graph, corpusSize)
	for i := range corpus {
		corpus[i] = graph.Molecule(5+i%4, rng)
	}
	if batchSize < 1 {
		batchSize = 1
	}
	return &workload{corpus: corpus, k: k, radius: radius, batchSize: batchSize}
}

// queryGraph returns a fresh query graph derived from the corpus.
func (wl *workload) queryGraph(rng *rand.Rand) *graph.Graph {
	base := wl.corpus[rng.Intn(len(wl.corpus))]
	q := graph.Mutate(base, 1+rng.Intn(3), graph.MoleculeAlphabet.Atoms, graph.MoleculeAlphabet.Bonds, rng)
	q.SetName("q")
	return q
}

// insertGraph returns a fresh run-owned graph to insert. The name is
// only remembered (via noteInserted) once the insert has actually
// landed, so deletes never race an in-flight insert into a 404.
func (wl *workload) insertGraph(rng *rand.Rand) *graph.Graph {
	g := graph.Molecule(5+rng.Intn(4), rng)
	// The PID keeps names unique across repeated runs against a daemon
	// that still holds a previous run's graphs.
	g.SetName(fmt.Sprintf("loadgen-%d-%06d", os.Getpid(), wl.nextInsert.Add(1)))
	return g
}

// noteInserted records a successfully inserted run-owned graph name as
// a future delete target.
func (wl *workload) noteInserted(name string) {
	wl.insertedMu.Lock()
	wl.inserted = append(wl.inserted, name)
	wl.insertedMu.Unlock()
}

// popInserted takes one run-owned graph name for deletion, or "" when
// none remain.
func (wl *workload) popInserted() string {
	wl.insertedMu.Lock()
	defer wl.insertedMu.Unlock()
	if len(wl.inserted) == 0 {
		return ""
	}
	name := wl.inserted[len(wl.inserted)-1]
	wl.inserted = wl.inserted[:len(wl.inserted)-1]
	return name
}

// pickKind draws an op kind from the weighted mix.
func pickKind(rng *rand.Rand, mix map[string]int) string {
	total := 0
	for _, k := range opKinds {
		total += mix[k]
	}
	n := rng.Intn(total)
	for _, k := range opKinds {
		n -= mix[k]
		if n < 0 {
			return k
		}
	}
	return "skyline"
}

// ackLog appends one JSON line per acknowledged mutation. Lines are
// written with a single Write under a mutex, so they never interleave;
// an external checker replays the file to hold the daemon to its acks
// (last line per name wins: insert → must exist, delete → must not).
type ackLog struct {
	mu sync.Mutex
	f  *os.File
}

func (a *ackLog) note(op, name string) {
	if a == nil {
		return
	}
	line := fmt.Sprintf("{\"op\":%q,\"name\":%q}\n", op, name)
	a.mu.Lock()
	a.f.WriteString(line)
	a.mu.Unlock()
}

// doInsert issues one keyed insert, recording the name for future
// deletes (and in the ack log) only once the daemon acknowledged it.
// The attempt line written up front lets the checker mark names whose
// final op never got an ack as ambiguous — an unacknowledged mutation
// may legitimately have landed (e.g. the fault hit after the WAL
// record was written), so nothing can be asserted about it.
func doInsert(cl *client.Client, wl *workload, rng *rand.Rand, acks *ackLog) error {
	g := wl.insertGraph(rng)
	acks.note("insert-attempt", g.Name())
	_, err := cl.Insert(context.Background(), server.InsertRequest{Graph: g})
	if err == nil {
		wl.noteInserted(g.Name())
		acks.note("insert", g.Name())
	}
	return err
}

// doOp issues one request of the given kind and reports whether it
// succeeded.
func doOp(cl *client.Client, wl *workload, rng *rand.Rand, kind string, acks *ackLog) error {
	ctx := context.Background()
	switch kind {
	case "skyline":
		_, err := cl.Skyline(ctx, server.QueryRequest{Graph: wl.queryGraph(rng)})
		return err
	case "topk":
		_, err := cl.TopK(ctx, server.QueryRequest{Graph: wl.queryGraph(rng), K: wl.k})
		return err
	case "range":
		r := wl.radius
		_, err := cl.Range(ctx, server.QueryRequest{Graph: wl.queryGraph(rng), Radius: &r})
		return err
	case "batch":
		qs := make([]server.BatchQuery, wl.batchSize)
		for i := range qs {
			switch i % 3 {
			case 0:
				qs[i] = server.BatchQuery{Kind: "skyline", QueryRequest: server.QueryRequest{Graph: wl.queryGraph(rng)}}
			case 1:
				qs[i] = server.BatchQuery{Kind: "topk", QueryRequest: server.QueryRequest{Graph: wl.queryGraph(rng), K: wl.k}}
			default:
				r := wl.radius
				qs[i] = server.BatchQuery{Kind: "range", QueryRequest: server.QueryRequest{Graph: wl.queryGraph(rng), Radius: &r}}
			}
		}
		_, err := cl.Batch(ctx, server.BatchRequest{Queries: qs})
		return err
	case "insert":
		return doInsert(cl, wl, rng, acks)
	case "delete":
		name := wl.popInserted()
		if name == "" {
			// Nothing of ours to delete yet; insert instead so the op
			// still exercises the mutation path.
			return doInsert(cl, wl, rng, acks)
		}
		acks.note("delete-attempt", name)
		_, err := cl.Delete(ctx, name, "")
		if err == nil {
			acks.note("delete", name)
		} else {
			// The delete may or may not have landed; put the name back so
			// a later delete settles it rather than leaking the slot.
			wl.noteInserted(name)
		}
		return err
	}
	return fmt.Errorf("unknown op kind %q", kind)
}

// runClosedLoop runs workers that each issue requests back to back
// until the deadline.
func runClosedLoop(cl *client.Client, wl *workload, mix map[string]int, rec *recorder, acks *ackLog, d time.Duration, workers int) {
	if workers < 1 {
		workers = 1
	}
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for time.Now().Before(deadline) {
				kind := pickKind(rng, mix)
				t0 := time.Now()
				err := doOp(cl, wl, rng, kind, acks)
				rec.record(kind, time.Since(t0), err)
			}
		}(w)
	}
	wg.Wait()
}

// runOpenLoop starts requests on a fixed schedule. Arrivals that would
// exceed the in-flight cap are counted as dropped rather than queued,
// so the offered rate stays honest when the server falls behind.
func runOpenLoop(cl *client.Client, wl *workload, mix map[string]int, rec *recorder, acks *ackLog, d time.Duration, qps float64, cap int) {
	if cap < 1 {
		cap = 1
	}
	period := time.Duration(float64(time.Second) / qps)
	if period <= 0 {
		period = time.Microsecond
	}
	rng := rand.New(rand.NewSource(12345))
	sem := make(chan struct{}, cap)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		kind := pickKind(rng, mix)
		select {
		case sem <- struct{}{}:
		default:
			rec.drop()
			continue
		}
		// Each op draws from its own rng so in-flight requests do not
		// race the dispatcher's stream.
		opRng := rand.New(rand.NewSource(rng.Int63()))
		wg.Add(1)
		go func(kind string) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			err := doOp(cl, wl, opRng, kind, acks)
			rec.record(kind, time.Since(t0), err)
		}(kind)
	}
	wg.Wait()
}

// recorder accumulates per-kind client-side latencies and error counts,
// the latter broken out by class (429 / 503 / timeout / 5xx / 4xx /
// transport) so a chaos run's failure mix is interpretable.
type recorder struct {
	mu      sync.Mutex
	lat     map[string][]float64      // milliseconds
	errs    map[string]int            // kind → total errors
	classes map[string]map[string]int // kind → class → errors
	dropped int
}

func newRecorder() *recorder {
	return &recorder{
		lat:     map[string][]float64{},
		errs:    map[string]int{},
		classes: map[string]map[string]int{},
	}
}

func (r *recorder) record(kind string, d time.Duration, err error) {
	ms := float64(d.Microseconds()) / 1000
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.errs[kind]++
		byClass := r.classes[kind]
		if byClass == nil {
			byClass = map[string]int{}
			r.classes[kind] = byClass
		}
		byClass[classify(err)]++
		return
	}
	r.lat[kind] = append(r.lat[kind], ms)
}

func (r *recorder) drop() {
	r.mu.Lock()
	r.dropped++
	r.mu.Unlock()
}

func (r *recorder) totalErrors() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.errs {
		n += e
	}
	return n
}

// percentile returns the q-quantile of sorted ms latencies.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// kindStats is one kind's digest.
type kindStats struct {
	count                     int
	errors                    int
	classes                   map[string]int
	meanMS, p50, p95, p99, mx float64
}

func (r *recorder) stats(kind string) kindStats {
	r.mu.Lock()
	lat := append([]float64(nil), r.lat[kind]...)
	errs := r.errs[kind]
	classes := map[string]int{}
	for c, n := range r.classes[kind] {
		classes[c] = n
	}
	r.mu.Unlock()
	sort.Float64s(lat)
	st := kindStats{count: len(lat), errors: errs, classes: classes}
	if len(lat) == 0 {
		return st
	}
	sum := 0.0
	for _, v := range lat {
		sum += v
	}
	st.meanMS = sum / float64(len(lat))
	st.p50 = percentile(lat, 0.50)
	st.p95 = percentile(lat, 0.95)
	st.p99 = percentile(lat, 0.99)
	st.mx = lat[len(lat)-1]
	return st
}

// Bench and Doc mirror cmd/benchjson's document shape so reports feed
// straight into `benchjson -compare`.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Raw        string             `json:"raw"`
}

type Doc struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Bench           `json:"benchmarks"`
}

// bench renders one kind's digest as a benchjson entry. ns/op is the
// mean latency so -compare's regression gate works unchanged.
func bench(name string, st kindStats, qps float64) Bench {
	m := map[string]float64{
		"ns/op":  st.meanMS * 1e6,
		"p50-ms": st.p50,
		"p95-ms": st.p95,
		"p99-ms": st.p99,
		"max-ms": st.mx,
		"qps":    qps,
		"errors": float64(st.errors),
	}
	for _, c := range errClasses {
		if n := st.classes[c]; n > 0 {
			m["errors-"+c] = float64(n)
		}
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\t%8d", name, st.count)
	for _, k := range keys {
		fmt.Fprintf(&sb, "\t%12.2f %s", m[k], k)
	}
	return Bench{Name: name, Iterations: int64(st.count), Metrics: m, Raw: sb.String()}
}

// report assembles the final benchjson document.
func (r *recorder) report(base string, elapsed time.Duration, concurrency int, targetQPS float64, cw *cacheWindow) Doc {
	doc := Doc{Context: map[string]string{
		"target":      base,
		"mode":        map[bool]string{true: "open", false: "closed"}[targetQPS > 0],
		"concurrency": fmt.Sprintf("%d", concurrency),
		"duration":    elapsed.String(),
	}}
	if targetQPS > 0 {
		doc.Context["target-qps"] = fmt.Sprintf("%g", targetQPS)
	}
	if r.dropped > 0 {
		doc.Context["dropped"] = fmt.Sprintf("%d", r.dropped)
	}
	var all kindStats
	all.classes = map[string]int{}
	allLat := []float64{}
	r.mu.Lock()
	for _, lat := range r.lat {
		allLat = append(allLat, lat...)
	}
	for _, e := range r.errs {
		all.errors += e
	}
	for _, byClass := range r.classes {
		for c, n := range byClass {
			all.classes[c] += n
		}
	}
	r.mu.Unlock()
	sort.Float64s(allLat)
	all.count = len(allLat)
	if all.count > 0 {
		sum := 0.0
		for _, v := range allLat {
			sum += v
		}
		all.meanMS = sum / float64(all.count)
		all.p50 = percentile(allLat, 0.50)
		all.p95 = percentile(allLat, 0.95)
		all.p99 = percentile(allLat, 0.99)
		all.mx = allLat[len(allLat)-1]
	}
	secs := elapsed.Seconds()
	aggregate := bench("BenchmarkLoadgen/all", all, float64(all.count)/secs)
	if cw != nil {
		// Server-side cache movement rides on the aggregate entry so
		// `benchjson -compare` tracks hit ratio and delta effectiveness
		// alongside latency.
		aggregate.Metrics["cache-hit-ratio"] = cw.hitRatio()
		aggregate.Metrics["delta-applied"] = float64(cw.deltaApplied)
		aggregate.Metrics["delta-fallbacks"] = float64(cw.deltaFallbacks)
	}
	doc.Benchmarks = append(doc.Benchmarks, aggregate)
	for _, kind := range opKinds {
		st := r.stats(kind)
		if st.count == 0 && st.errors == 0 {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, bench("BenchmarkLoadgen/"+kind, st, float64(st.count)/secs))
	}
	return doc
}

// classBreakdown renders "429=2 503=5" from a class→count map, in the
// fixed errClasses order; empty when there were no errors.
func classBreakdown(classes map[string]int) string {
	parts := []string{}
	for _, c := range errClasses {
		if n := classes[c]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, n))
		}
	}
	return strings.Join(parts, " ")
}

// printSummary writes the human-readable digest.
func (r *recorder) printSummary(w io.Writer, elapsed time.Duration, cw *cacheWindow) {
	fmt.Fprintf(w, "loadgen: %s elapsed\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "%-10s %8s %7s %10s %10s %10s %10s %10s  %s\n",
		"kind", "count", "errors", "mean-ms", "p50-ms", "p95-ms", "p99-ms", "max-ms", "error-classes")
	total := map[string]int{}
	for _, kind := range opKinds {
		st := r.stats(kind)
		if st.count == 0 && st.errors == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s %8d %7d %10.2f %10.2f %10.2f %10.2f %10.2f  %s\n",
			kind, st.count, st.errors, st.meanMS, st.p50, st.p95, st.p99, st.mx, classBreakdown(st.classes))
		for c, n := range st.classes {
			total[c] += n
		}
	}
	if len(total) > 0 {
		fmt.Fprintf(w, "errors by class: %s\n", classBreakdown(total))
	}
	if r.dropped > 0 {
		fmt.Fprintf(w, "dropped (open-loop in-flight cap): %d\n", r.dropped)
	}
	if cw != nil {
		fmt.Fprintf(w, "server cache: hit-ratio=%.2f (hits=%d misses=%d) delta_applied=%d delta_fallbacks=%d\n",
			cw.hitRatio(), cw.hits, cw.misses, cw.deltaApplied, cw.deltaFallbacks)
	}
}
