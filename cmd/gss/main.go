// Command gss is the skygraph command-line tool: generate synthetic graph
// databases, inspect them, and run similarity skyline / diversity / top-k
// queries against a query graph.
//
// Usage:
//
//	gss gen -out db.lgf -n 50 -min 8 -max 12 -seed 1     # synthetic DB
//	gss paper -out paper.lgf                             # the paper's D and q
//	gss info -db db.lgf                                  # database stats
//	gss skyline -db db.lgf -query q.lgf                  # GSS(D, q)
//	gss diverse -db db.lgf -query q.lgf -k 2             # Section VII
//	gss topk -db db.lgf -query q.lgf -measure DistEd -k 3
package main

import (
	"flag"
	"fmt"
	"os"

	"skygraph/internal/core"
	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/measure"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "paper":
		err = cmdPaper(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "skyline":
		err = cmdSkyline(os.Args[2:])
	case "diverse":
		err = cmdDiverse(os.Args[2:])
	case "topk":
		err = cmdTopK(os.Args[2:])
	case "pair":
		err = cmdPair(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gss: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gss: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gss <subcommand> [flags]

subcommands:
  gen      generate a synthetic molecule-like database (LGF)
  paper    write the paper's Section VI database and query
  info     print database statistics
  skyline  run a graph similarity skyline query
  diverse  run a diversity-refined skyline query
  topk     run the single-measure top-k baseline
  pair     print every measure between two graphs
  convert  convert graph files between LGF and JSON

run 'gss <subcommand> -h' for flags.`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "db.lgf", "output LGF file")
	n := fs.Int("n", 50, "number of graphs")
	minV := fs.Int("min", 8, "minimum vertices per graph")
	maxV := fs.Int("max", 12, "maximum vertices per graph")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	db := gdb.New()
	if err := db.InsertAll(dataset.MoleculeDB(*n, *minV, *maxV, *seed)); err != nil {
		return err
	}
	if err := db.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d graphs to %s\n", db.Len(), *out)
	return nil
}

func cmdPaper(args []string) error {
	fs := flag.NewFlagSet("paper", flag.ExitOnError)
	out := fs.String("out", "paper.lgf", "output LGF file for the database")
	qout := fs.String("query", "paper_query.lgf", "output LGF file for the query")
	fs.Parse(args)
	db := gdb.New()
	if err := db.InsertAll(dataset.PaperDB()); err != nil {
		return err
	}
	if err := db.Save(*out); err != nil {
		return err
	}
	qf, err := os.Create(*qout)
	if err != nil {
		return err
	}
	if err := graph.WriteLGF(qf, dataset.PaperQuery()); err != nil {
		qf.Close()
		return err
	}
	if err := qf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (7 graphs) and %s (query q)\n", *out, *qout)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	dbPath := fs.String("db", "db.lgf", "database LGF file")
	fs.Parse(args)
	db, err := gdb.Load(*dbPath)
	if err != nil {
		return err
	}
	s := db.Stats()
	fmt.Printf("graphs:        %d\n", s.Graphs)
	fmt.Printf("vertices:      %d\n", s.Vertices)
	fmt.Printf("edges:         %d\n", s.Edges)
	fmt.Printf("vertex labels: %d\n", s.VertexLabels)
	fmt.Printf("edge labels:   %d\n", s.EdgeLabels)
	fmt.Printf("size range:    [%d, %d] edges\n", s.MinSize, s.MaxSize)
	return nil
}

func loadEngineAndQuery(dbPath, queryPath string, budget int64) (*core.Engine, *graph.Graph, error) {
	eng, err := core.Load(dbPath, core.WithBudget(budget, budget))
	if err != nil {
		return nil, nil, err
	}
	qf, err := os.Open(queryPath)
	if err != nil {
		return nil, nil, err
	}
	defer qf.Close()
	qs, err := graph.ReadLGF(qf)
	if err != nil {
		return nil, nil, err
	}
	if len(qs) != 1 {
		return nil, nil, fmt.Errorf("query file must hold exactly one graph, found %d", len(qs))
	}
	return eng, qs[0], nil
}

func cmdSkyline(args []string) error {
	fs := flag.NewFlagSet("skyline", flag.ExitOnError)
	dbPath := fs.String("db", "db.lgf", "database LGF file")
	queryPath := fs.String("query", "q.lgf", "query LGF file (one graph)")
	budget := fs.Int64("budget", 0, "max search nodes per GED/MCS (0 = exact)")
	all := fs.Bool("all", false, "also print dominated graphs")
	fs.Parse(args)
	eng, q, err := loadEngineAndQuery(*dbPath, *queryPath, *budget)
	if err != nil {
		return err
	}
	res, err := eng.Skyline(q)
	if err != nil {
		return err
	}
	fmt.Printf("skyline (%d of %d graphs; %d inexact evaluations):\n", len(res.Members), res.Evaluated, res.Inexact)
	fmt.Printf("%-12s %10s %10s %10s\n", "graph", "DistEd", "DistMcs", "DistGu")
	for _, m := range res.Members {
		fmt.Printf("%-12s %10.2f %10.2f %10.2f\n", m.Name, m.Vector[0], m.Vector[1], m.Vector[2])
	}
	if *all {
		fmt.Println("dominated:")
		inSky := map[string]bool{}
		for _, m := range res.Members {
			inSky[m.Name] = true
		}
		for _, m := range res.All {
			if inSky[m.Name] {
				continue
			}
			dom, _ := core.Explain(res, m.Name)
			fmt.Printf("%-12s %10.2f %10.2f %10.2f  (dominated by %s)\n",
				m.Name, m.Vector[0], m.Vector[1], m.Vector[2], dom)
		}
	}
	return nil
}

func cmdDiverse(args []string) error {
	fs := flag.NewFlagSet("diverse", flag.ExitOnError)
	dbPath := fs.String("db", "db.lgf", "database LGF file")
	queryPath := fs.String("query", "q.lgf", "query LGF file (one graph)")
	k := fs.Int("k", 2, "result size")
	budget := fs.Int64("budget", 0, "max search nodes per GED/MCS (0 = exact)")
	fs.Parse(args)
	eng, q, err := loadEngineAndQuery(*dbPath, *queryPath, *budget)
	if err != nil {
		return err
	}
	res, err := eng.DiverseSkyline(q, *k)
	if err != nil {
		return err
	}
	mode := "exhaustive"
	if !res.Exhaustive {
		mode = "greedy"
	}
	fmt.Printf("skyline size %d; diverse %d-subset (%s): %v\n", len(res.Members), *k, mode, res.Selected)
	return nil
}

func cmdTopK(args []string) error {
	fs := flag.NewFlagSet("topk", flag.ExitOnError)
	dbPath := fs.String("db", "db.lgf", "database LGF file")
	queryPath := fs.String("query", "q.lgf", "query LGF file (one graph)")
	k := fs.Int("k", 3, "result size")
	name := fs.String("measure", "DistEd", "measure: DistEd|DistNEd|DistMcs|DistGu")
	budget := fs.Int64("budget", 0, "max search nodes per GED/MCS (0 = exact)")
	prune := fs.Bool("prune", true, "best-first bound-index evaluation (identical answer, less work; -prune=false forces the full scan)")
	fs.Parse(args)
	m, err := measure.ByName(*name)
	if err != nil {
		return err
	}
	eng, q, err := loadEngineAndQuery(*dbPath, *queryPath, *budget)
	if err != nil {
		return err
	}
	if *prune {
		eng = eng.WithOptions(core.WithPrune())
	}
	items, err := eng.TopK(q, m, *k)
	if err != nil {
		return err
	}
	fmt.Printf("top-%d by %s:\n", *k, m.Name())
	for i, it := range items {
		fmt.Printf("%2d. %-12s %.3f\n", i+1, it.Name, it.Vector[0])
	}
	return nil
}
