package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"skygraph/internal/graph"
	"skygraph/internal/measure"
)

// cmdPair prints all similarity measures between two graphs, each given as
// a one-graph LGF file — a diagnostic for understanding why a graph did or
// did not enter a skyline.
func cmdPair(args []string) error {
	fs := flag.NewFlagSet("pair", flag.ExitOnError)
	aPath := fs.String("a", "", "first graph (LGF, one graph)")
	bPath := fs.String("b", "", "second graph (LGF, one graph)")
	budget := fs.Int64("budget", 0, "max search nodes per GED/MCS (0 = exact)")
	fs.Parse(args)
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("pair: both -a and -b are required")
	}
	a, err := loadOneGraph(*aPath)
	if err != nil {
		return err
	}
	b, err := loadOneGraph(*bPath)
	if err != nil {
		return err
	}
	s := measure.Compute(a, b, measure.Options{GEDMaxNodes: *budget, MCSMaxNodes: *budget})
	fmt.Printf("%s: |V|=%d |E|=%d\n", a.Name(), a.Order(), a.Size())
	fmt.Printf("%s: |V|=%d |E|=%d\n", b.Name(), b.Order(), b.Size())
	exact := ""
	if !s.GEDExact {
		exact = " (upper bound)"
	}
	fmt.Printf("GED       %g%s\n", s.GED, exact)
	exact = ""
	if !s.MCSExact {
		exact = " (lower bound)"
	}
	fmt.Printf("|mcs|     %d%s\n", s.MCS, exact)
	for _, m := range measure.Extended() {
		fmt.Printf("%-10s %.4f\n", m.Name(), m.FromStats(s))
	}
	fmt.Printf("%-10s %.4f\n", "DistNEd", (measure.DistNEd{}).FromStats(s))
	fmt.Printf("%-10s %.4f  %-10s %.4f\n", "SimMcs", measure.SimMcs(s), "SimGu", measure.SimGu(s))
	return nil
}

// cmdConvert converts graph files between LGF and JSON, inferring the
// direction from the extensions.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input file (.lgf or .json)")
	out := fs.String("out", "", "output file (.lgf or .json)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: both -in and -out are required")
	}
	var graphs []*graph.Graph
	switch filepath.Ext(*in) {
	case ".lgf":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		graphs, err = graph.ReadLGF(f)
		f.Close()
		if err != nil {
			return err
		}
	case ".json":
		data, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &graphs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("convert: unsupported input extension %q", filepath.Ext(*in))
	}
	switch filepath.Ext(*out) {
	case ".lgf":
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		for _, g := range graphs {
			if err := graph.WriteLGF(f, g); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	case ".json":
		data, err := json.MarshalIndent(graphs, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	default:
		return fmt.Errorf("convert: unsupported output extension %q", filepath.Ext(*out))
	}
	fmt.Printf("converted %d graph(s): %s -> %s\n", len(graphs), *in, *out)
	return nil
}

func loadOneGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gs, err := graph.ReadLGF(f)
	if err != nil {
		return nil, err
	}
	if len(gs) != 1 {
		return nil, fmt.Errorf("%s: want exactly one graph, found %d", path, len(gs))
	}
	return gs[0], nil
}
