// Command benchjson converts `go test -bench` output (stdin) into a
// JSON document (stdout): one record per benchmark line with every
// reported metric parsed, plus the raw line so the original
// benchstat-consumable text can be reconstructed exactly
// (`jq -r '.benchmarks[].raw'` round-trips it).
//
// Usage: go test -bench=SkylineScaling -benchmem . | benchjson > BENCH_skyline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Raw        string             `json:"raw"`
}

// Doc is the whole converted run.
type Doc struct {
	// Context holds the goos/goarch/pkg/cpu header lines.
	Context map[string]string `json:"context"`
	// Benchmarks holds the parsed result lines in input order.
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	doc := Doc{Context: map[string]string{}, Benchmarks: []Bench{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		default:
			if k, v, ok := strings.Cut(line, ": "); ok && !strings.Contains(k, " ") {
				doc.Context[k] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		// A bench run that produced no result lines is a failed run
		// (build error, panic, no matching benchmarks): fail loudly so
		// pipelines cannot record an empty document as success.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine splits "BenchmarkX-8  4  252594608 ns/op  29.00 evaluated/op ..."
// into name, iteration count and (value, unit) metric pairs.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}, Raw: line}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
