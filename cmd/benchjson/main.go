// Command benchjson converts `go test -bench` output (stdin) into a
// JSON document (stdout): one record per benchmark line with every
// reported metric parsed, plus the raw line so the original
// benchstat-consumable text can be reconstructed exactly
// (`jq -r '.benchmarks[].raw'` round-trips it).
//
// Usage: go test -bench=SkylineScaling -benchmem . | benchjson > BENCH_skyline.json
//
// With -compare, benchjson instead reads two previously recorded
// documents and exits nonzero when any benchmark present in both
// regressed by more than -tolerance percent on ns/op — the backslide
// guard bench jobs run after recording a fresh document:
//
//	benchjson -compare BENCH_pivot.json BENCH_pivot_new.json
//
// Benchmarks present in only one document are reported but never fail
// the comparison (renames should not break the job), and the
// comparison is only meaningful between runs on comparable hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Raw        string             `json:"raw"`
}

// Doc is the whole converted run.
type Doc struct {
	// Context holds the goos/goarch/pkg/cpu header lines.
	Context map[string]string `json:"context"`
	// Benchmarks holds the parsed result lines in input order.
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two recorded documents (old.json new.json) instead of converting stdin")
	tolerance := flag.Float64("tolerance", 20, "maximum allowed ns/op regression in percent before -compare fails")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareDocs(flag.Arg(0), flag.Arg(1), *tolerance))
	}
	doc := Doc{Context: map[string]string{}, Benchmarks: []Bench{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		default:
			if k, v, ok := strings.Cut(line, ": "); ok && !strings.Contains(k, " ") {
				doc.Context[k] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		// A bench run that produced no result lines is a failed run
		// (build error, panic, no matching benchmarks): fail loudly so
		// pipelines cannot record an empty document as success.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// compareDocs loads two recorded documents and reports per-benchmark
// ns/op movement, returning the process exit code: 1 when any shared
// benchmark regressed past the tolerance, 0 otherwise.
func compareDocs(oldPath, newPath string, tolerance float64) int {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	oldNs := map[string]float64{}
	for _, b := range oldDoc.Benchmarks {
		if v, ok := b.Metrics["ns/op"]; ok {
			oldNs[b.Name] = v
		}
	}
	failed := false
	shared := 0
	seen := map[string]bool{}
	for _, b := range newDoc.Benchmarks {
		nv, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		seen[b.Name] = true
		ov, ok := oldNs[b.Name]
		if !ok || ov <= 0 {
			fmt.Printf("%-60s new benchmark (%.0f ns/op)\n", b.Name, nv)
			continue
		}
		shared++
		delta := (nv - ov) / ov * 100
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-60s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n", b.Name, ov, nv, delta, status)
	}
	// Report disappeared benchmarks too — a regression hidden behind a
	// rename should at least be visible in the job log.
	for _, b := range oldDoc.Benchmarks {
		if _, ok := b.Metrics["ns/op"]; ok && !seen[b.Name] {
			fmt.Printf("%-60s missing from new document (was %.0f ns/op)\n", b.Name, b.Metrics["ns/op"])
		}
	}
	if shared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no shared benchmarks between the two documents")
		return 2
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %.0f%% detected\n", tolerance)
		return 1
	}
	return 0
}

func loadDoc(path string) (Doc, error) {
	var doc Doc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parsing %s: %w", path, err)
	}
	return doc, nil
}

// parseBenchLine splits "BenchmarkX-8  4  252594608 ns/op  29.00 evaluated/op ..."
// into name, iteration count and (value, unit) metric pairs.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}, Raw: line}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
