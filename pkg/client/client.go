// Package client is the Go client for skygraphd, built for the failure
// modes the daemon actually produces: per-attempt timeouts with the
// deadline propagated to the server, capped exponential backoff with
// full jitter, a process-wide retry budget so retries cannot amplify an
// outage, Retry-After honoring on 429/503, and strict retry-safety
// rules — queries are always retryable (they have no side effects),
// mutations only under an idempotency key (generated automatically),
// which the server checks against its insert-sequence high-water and
// replay table so a retried mutation is applied at most once.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"skygraph/internal/server"
)

// APIError is a non-2xx answer from the daemon, carrying the machine
// class and retry hint the server attached.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Class is the server's error class (server.Class*); empty on
	// pre-class daemons or non-JSON bodies.
	Class string
	// Message is the server's error text.
	Message string
	// RetryAfter is the server's hint, when it sent one.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Class != "" {
		return fmt.Sprintf("skygraphd: %s (%d %s)", e.Message, e.Status, e.Class)
	}
	return fmt.Sprintf("skygraphd: %s (%d)", e.Message, e.Status)
}

// ErrRetryBudgetExhausted wraps the final error when a retryable
// failure could not be retried because the budget was empty.
var ErrRetryBudgetExhausted = errors.New("client: retry budget exhausted")

// Options tunes a Client. The zero value is production-ready.
type Options struct {
	// AttemptTimeout bounds each HTTP attempt (default 10s). The
	// remaining attempt budget is propagated to the server in
	// X-Skygraph-Timeout-Ms so it abandons work the client stopped
	// waiting for.
	AttemptTimeout time.Duration
	// MaxAttempts caps tries per call, first attempt included
	// (default 4).
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 50ms); Backoff
	// doubles per retry up to MaxBackoff (default 2s), with full jitter.
	// A server Retry-After above the computed delay wins.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryBudget is the burst of retries the client may spend
	// (default 10); RetryRatio is how much budget each fresh call earns
	// back, i.e. the steady-state retries-per-request ratio
	// (default 0.1). Together they stop retries from amplifying an
	// outage: once the budget drains, failures surface immediately.
	RetryBudget float64
	RetryRatio  float64
	// HTTPClient overrides the transport (default http.DefaultClient;
	// per-attempt timeouts come from AttemptTimeout, so the client's own
	// Timeout should stay 0).
	HTTPClient *http.Client
}

// Client talks to one skygraphd. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	opts Options

	mu     sync.Mutex
	tokens float64
}

// New returns a Client for the daemon at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts Options) *Client {
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 10 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.RetryBudget <= 0 {
		opts.RetryBudget = 10
	}
	if opts.RetryRatio <= 0 {
		opts.RetryRatio = 0.1
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc, opts: opts, tokens: opts.RetryBudget}
}

// earn credits the budget for a fresh call; spend takes one retry from
// it. The budget makes the steady-state retry rate at most RetryRatio
// of the request rate, with RetryBudget of burst.
func (c *Client) earn() {
	c.mu.Lock()
	c.tokens = min(c.tokens+c.opts.RetryRatio, c.opts.RetryBudget)
	c.mu.Unlock()
}

func (c *Client) spend() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// NewIdempotencyKey returns a fresh random mutation key.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to time.
		return fmt.Sprintf("t-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// jitter picks a uniform delay in [d/2, d] (full jitter keeps a fleet
// of retrying clients from synchronizing).
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	n, err := rand.Int(rand.Reader, big.NewInt(int64(d/2)))
	if err != nil {
		return d
	}
	return d/2 + time.Duration(n.Int64())
}

// retryable reports whether err may be retried for a request of the
// given kind, and the server's Retry-After hint when it sent one.
//
// Queries have no side effects, so every transport error, timeout and
// retryable status (429, 500, 502, 503, 504) is retryable. Mutations
// are retryable only when keyed — the key makes the retry exactly-once
// on the server — and never on corruption-class failures (retrying a
// broken store cannot help) or request errors (409, 4xx).
func retryable(err error, mutation, keyed bool) (bool, time.Duration) {
	if err == nil {
		return false, 0
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		// Transport-level: connection refused/reset, attempt timeout.
		// For a mutation the request may or may not have been applied —
		// only a key makes the retry safe.
		if mutation && !keyed {
			return false, 0
		}
		return true, 0
	}
	if apiErr.Class == server.ClassCorrupt {
		return false, 0
	}
	switch apiErr.Status {
	case http.StatusTooManyRequests,
		http.StatusServiceUnavailable,
		http.StatusBadGateway,
		http.StatusGatewayTimeout:
		if mutation && !keyed {
			return false, 0
		}
		return true, apiErr.RetryAfter
	case http.StatusInternalServerError:
		// Queries are side-effect free; a 500 mutation (unclassified or
		// corrupt-adjacent) is not worth retrying even keyed.
		return !mutation, apiErr.RetryAfter
	}
	return false, 0
}

// call runs one request with retries. body is re-marshaled per attempt
// never — it is a fixed byte slice; headers are copied per attempt.
func (c *Client) call(ctx context.Context, method, path string, body any, headers map[string]string, mutation, keyed bool, out any) error {
	c.earn()
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	backoff := c.opts.BaseBackoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		lastErr = c.attempt(ctx, method, path, payload, headers, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's deadline, not the attempt's: stop.
			return lastErr
		}
		ok, serverHint := retryable(lastErr, mutation, keyed)
		if !ok || attempt >= c.opts.MaxAttempts {
			return lastErr
		}
		if !c.spend() {
			return fmt.Errorf("%w: %w", ErrRetryBudgetExhausted, lastErr)
		}
		delay := jitter(backoff)
		if serverHint > delay {
			delay = serverHint
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return lastErr
		}
		if backoff *= 2; backoff > c.opts.MaxBackoff {
			backoff = c.opts.MaxBackoff
		}
	}
}

// attempt is one HTTP round trip under the per-attempt timeout, with
// the effective deadline propagated in X-Skygraph-Timeout-Ms.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, headers map[string]string, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	if dl, ok := actx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(server.TimeoutHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode}
		var eb server.ErrorResponse
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			apiErr.Message, apiErr.Class = eb.Error, eb.Class
			if eb.RetryAfterMS > 0 {
				apiErr.RetryAfter = time.Duration(eb.RetryAfterMS) * time.Millisecond
			}
		} else {
			apiErr.Message = string(bytes.TrimSpace(raw))
		}
		if apiErr.RetryAfter == 0 {
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				apiErr.RetryAfter = time.Duration(s) * time.Second
			}
		}
		return apiErr
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

// Skyline answers a skyline query (retryable).
func (c *Client) Skyline(ctx context.Context, req server.QueryRequest) (*server.SkylineResponse, error) {
	var out server.SkylineResponse
	if err := c.call(ctx, http.MethodPost, "/query/skyline", req, nil, false, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TopK answers a top-k query (retryable).
func (c *Client) TopK(ctx context.Context, req server.QueryRequest) (*server.TopKResponse, error) {
	var out server.TopKResponse
	if err := c.call(ctx, http.MethodPost, "/query/topk", req, nil, false, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Range answers a range query (retryable).
func (c *Client) Range(ctx context.Context, req server.QueryRequest) (*server.RangeResponse, error) {
	var out server.RangeResponse
	if err := c.call(ctx, http.MethodPost, "/query/range", req, nil, false, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch answers a query batch (retryable — item errors are reported in
// place by the server, so a batch answer never mutates state).
func (c *Client) Batch(ctx context.Context, req server.BatchRequest) (*server.BatchResponse, error) {
	var out server.BatchResponse
	if err := c.call(ctx, http.MethodPost, "/query/batch", req, nil, false, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Insert inserts graphs. When req.IdempotencyKey is empty a random key
// is generated, making the call safely retryable: the key is persisted
// with the WAL records it produces, so the server replays the earlier
// ack (or completes a partially applied batch) instead of applying
// twice — in process and across restarts.
func (c *Client) Insert(ctx context.Context, req server.InsertRequest) (*server.InsertResponse, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = NewIdempotencyKey()
	}
	var out server.InsertResponse
	if err := c.call(ctx, http.MethodPost, "/graphs", req, nil, true, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete deletes a graph by name, keyed via the idempotency header
// (key generated when empty) so retries are safe.
func (c *Client) Delete(ctx context.Context, name, idempotencyKey string) (*server.DeleteResponse, error) {
	if idempotencyKey == "" {
		idempotencyKey = NewIdempotencyKey()
	}
	hdr := map[string]string{server.IdempotencyHeader: idempotencyKey}
	var out server.DeleteResponse
	if err := c.call(ctx, http.MethodDelete, "/graphs/"+url.PathEscape(name), nil, hdr, true, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Get fetches one graph as raw JSON (retryable).
func (c *Client) Get(ctx context.Context, name string) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.call(ctx, http.MethodGet, "/graphs/"+url.PathEscape(name), nil, nil, false, false, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// List lists stored graph names (retryable).
func (c *Client) List(ctx context.Context) (*server.ListResponse, error) {
	var out server.ListResponse
	if err := c.call(ctx, http.MethodGet, "/graphs", nil, nil, false, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches /stats (retryable). Health.InsertSeqHighWater is the
// reference point for external mutation-retry bookkeeping.
func (c *Client) Stats(ctx context.Context) (*server.StatsResponse, error) {
	var out server.StatsResponse
	if err := c.call(ctx, http.MethodGet, "/stats", nil, nil, false, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
