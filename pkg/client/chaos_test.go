package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skygraph/internal/fault"
	"skygraph/internal/gdb"
	"skygraph/internal/graph"
	"skygraph/internal/server"
)

// TestChaosSoak is the capstone resilience test: a concurrent mutation
// workload driven through the retrying client while failpoints fire and
// the daemon restarts, twice — once fault-free (the reference) and once
// under chaos — with the requirement that both runs converge to the
// same database: every acknowledged mutation survives the final
// restart, every unacknowledged one is absent, and canonicalized
// skyline / top-k / range answers are byte-identical across the runs.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second integration test")
	}
	ops := buildChaosOps()
	queries := chaosQueries()

	ref := soakRun(t, ops, queries, false)
	chaos := soakRun(t, ops, queries, true)

	if !bytes.Equal(ref, chaos) {
		t.Fatalf("answers diverged between fault-free and chaos runs:\nref:   %s\nchaos: %s", ref, chaos)
	}
}

// chaosOp is one workload mutation. Each op carries its idempotency key
// so every retry — the client's own attempts and the workload's outer
// until-acked loop — presents the same key to the server.
type chaosOp struct {
	insert *graph.Graph // nil for deletes
	name   string
	key    string
}

// buildChaosOps returns per-worker op lists: 40 deterministic molecule
// inserts partitioned across 4 workers, each worker then deleting its
// every-third graph. Per-name ordering (insert before delete) holds
// because a name's two ops live on the same worker, in order.
func buildChaosOps() [][]chaosOp {
	rng := rand.New(rand.NewSource(42))
	const workers = 4
	ops := make([][]chaosOp, workers)
	var deletes [workers][]chaosOp
	for i := 0; i < 40; i++ {
		g := graph.Molecule(5+i%4, rng)
		g.SetName(fmt.Sprintf("chaos-%02d", i))
		w := i % workers
		ops[w] = append(ops[w], chaosOp{insert: g, name: g.Name(), key: fmt.Sprintf("ins-%02d", i)})
		if i%3 == 0 {
			deletes[w] = append(deletes[w], chaosOp{name: g.Name(), key: fmt.Sprintf("del-%02d", i)})
		}
	}
	for w := range ops {
		ops[w] = append(ops[w], deletes[w]...)
	}
	return ops
}

// chaosFinalNames is the set the database must hold after either run:
// every inserted name whose delete was not part of the workload.
func chaosFinalNames() []string {
	var names []string
	for i := 0; i < 40; i++ {
		if i%3 != 0 {
			names = append(names, fmt.Sprintf("chaos-%02d", i))
		}
	}
	sort.Strings(names)
	return names
}

// chaosQueries returns the fixed query graphs answers are compared on.
func chaosQueries() []*graph.Graph {
	rng := rand.New(rand.NewSource(7))
	qs := make([]*graph.Graph, 3)
	for i := range qs {
		qs[i] = graph.Molecule(6, rng)
		qs[i].SetName("q")
	}
	return qs
}

// chaosDaemon is a restartable durable skygraphd behind one stable URL:
// the httptest listener survives restarts, delegating to whichever
// handler is current. While "down", connections are hijacked and
// dropped so the client sees transport errors, as it would across a
// real crash.
type chaosDaemon struct {
	t   *testing.T
	dir string
	h   atomic.Value // http.Handler
	ts  *httptest.Server

	mu  sync.Mutex
	srv *server.Server
	d   *gdb.Durable
}

// downHandler (and the Store of srv.Handler below) always stores an
// http.HandlerFunc: atomic.Value requires one consistent concrete type.
func downHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}
}

func newChaosDaemon(t *testing.T) *chaosDaemon {
	cd := &chaosDaemon{t: t, dir: t.TempDir()}
	cd.h.Store(downHandler())
	cd.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cd.h.Load().(http.HandlerFunc).ServeHTTP(w, r)
	}))
	cd.start()
	t.Cleanup(func() {
		cd.stop()
		cd.ts.Close()
	})
	return cd
}

func (cd *chaosDaemon) start() {
	cd.t.Helper()
	d, err := gdb.OpenDurable(gdb.DurableOptions{Dir: cd.dir, Shards: 2})
	if err != nil {
		cd.t.Fatalf("OpenDurable: %v", err)
	}
	srv := server.New(d.DB, server.Config{
		CacheSize:    32,
		Durable:      d,
		DegradeAfter: 2,
		ProbeEvery:   20 * time.Millisecond,
		RetryAfter:   50 * time.Millisecond,
	})
	cd.mu.Lock()
	cd.d, cd.srv = d, srv
	cd.mu.Unlock()
	cd.h.Store(http.HandlerFunc(srv.Handler().ServeHTTP))
}

// stop takes the daemon down like a crash: the URL starts dropping
// connections, then the server and WAL close under whatever requests
// are still in flight (they surface as transient 503s, as a dying
// process would produce).
func (cd *chaosDaemon) stop() {
	cd.h.Store(downHandler())
	cd.mu.Lock()
	srv, d := cd.srv, cd.d
	cd.srv, cd.d = nil, nil
	cd.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if d != nil {
		d.Close() // a double Close (or close-under-fire) error is part of the chaos
	}
}

func (cd *chaosDaemon) restart() {
	cd.stop()
	cd.start()
}

// soakRun executes the workload against a fresh data directory —
// optionally under failpoint storms and restarts — then cleanly
// restarts, verifies the database holds exactly the acknowledged state,
// and returns the canonicalized answers to the fixed queries.
func soakRun(t *testing.T, ops [][]chaosOp, queries []*graph.Graph, chaos bool) []byte {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)

	cd := newChaosDaemon(t)
	cl := New(cd.ts.URL, Options{
		AttemptTimeout: 5 * time.Second,
		MaxAttempts:    4,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		RetryBudget:    1000,
		RetryRatio:     1,
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		runChaosOps(t, cl, ops)
	}()

	if chaos {
		// Failpoint storms with a restart every other round. Faults are
		// cleared before each restart so recovery itself runs clean — the
		// storm targets live traffic, which is what the acked/unacked
		// contract is about.
		specs := []string{
			"wal/append=error:err=ENOSPC,limit=4",
			"wal/fsync=error:err=EIO,limit=3",
			"wal/append=short:bytes=5,limit=2",
		}
		for i := 0; i < 6; i++ {
			select {
			case <-done:
			default:
			}
			if err := fault.Configure(specs[i%len(specs)]); err != nil {
				t.Fatalf("fault.Configure: %v", err)
			}
			time.Sleep(40 * time.Millisecond)
			fault.Reset()
			if i%2 == 1 {
				cd.restart()
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("workload did not complete")
	}
	fault.Reset()

	if chaos {
		soakDegradedPhase(t, cd, cl)
	}

	// Clean final restart: whatever the run left in the WAL must replay
	// to exactly the acknowledged state.
	cd.restart()

	ctx := context.Background()
	list, err := cl.List(ctx)
	if err != nil {
		t.Fatalf("List after final restart: %v", err)
	}
	got := append([]string(nil), list.Names...)
	sort.Strings(got)
	want := chaosFinalNames()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("database after final restart does not match acknowledged state:\ngot:  %v\nwant: %v", got, want)
	}

	return canonicalAnswers(t, cl, queries)
}

// runChaosOps drives every op to acknowledgment: the client's internal
// retries handle transient windows, and the outer loop re-presents the
// same idempotency key until the daemon acks — the server's replay
// (answered from WAL-recovered keys after a restart) makes that
// at-most-once.
func runChaosOps(t *testing.T, cl *Client, ops [][]chaosOp) {
	var wg sync.WaitGroup
	for _, list := range ops {
		wg.Add(1)
		go func(list []chaosOp) {
			defer wg.Done()
			for _, op := range list {
				deadline := time.Now().Add(90 * time.Second)
				for {
					var err error
					if op.insert != nil {
						_, err = cl.Insert(context.Background(), server.InsertRequest{Graph: op.insert, IdempotencyKey: op.key})
					} else {
						_, err = cl.Delete(context.Background(), op.name, op.key)
					}
					if err == nil {
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("op on %s never acked: %v", op.name, err)
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(list)
	}
	wg.Wait()
}

// soakDegradedPhase proves the daemon degrades instead of 500-ing
// forever: with a persistent append fault armed, unkeyed-retry-free
// mutations fail until the machine trips to degraded-readonly, queries
// keep answering from memory, and clearing the fault lets the probe
// re-arm writes. The probe inserts are never acknowledged, so the final
// membership check doubles as their absence check.
func soakDegradedPhase(t *testing.T, cd *chaosDaemon, cl *Client) {
	t.Helper()
	if err := fault.Configure("wal/append=error:err=ENOSPC"); err != nil {
		t.Fatalf("fault.Configure: %v", err)
	}
	oneshot := New(cd.ts.URL, Options{AttemptTimeout: 2 * time.Second, MaxAttempts: 1})
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		g := graph.Molecule(5, rng)
		g.SetName("degrade-probe")
		if _, err := oneshot.Insert(ctx, server.InsertRequest{Graph: g}); err == nil {
			t.Fatal("insert succeeded with a persistent append fault armed")
		}
	}
	waitState(t, cl, func(state string) bool { return state == "degraded_readonly" })

	// Reads stay up in degraded-readonly.
	if _, err := cl.Skyline(ctx, server.QueryRequest{Graph: chaosQueries()[0]}); err != nil {
		t.Fatalf("skyline while degraded: %v", err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats while degraded: %v", err)
	}
	if stats.Health == nil || stats.Health.Degradations < 1 {
		t.Fatalf("degraded daemon reported no degradation: %+v", stats.Health)
	}

	// Heal the disk; the probe must move the machine off degraded.
	fault.Reset()
	waitState(t, cl, func(state string) bool { return state != "degraded_readonly" })
}

// waitState polls /stats until the health state satisfies ok.
func waitState(t *testing.T, cl *Client, ok func(string) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := cl.Stats(context.Background())
		if err == nil && stats.Health != nil && ok(stats.Health.State) {
			return
		}
		if time.Now().After(deadline) {
			state := "<unreachable>"
			if err == nil && stats.Health != nil {
				state = stats.Health.State
			}
			t.Fatalf("health state stuck at %s", state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// canonicalAnswers renders the fixed queries' answers in a
// concurrency-independent form: result rows carry only identity and
// score, sorted on them, so two runs that converged to the same
// database produce identical bytes regardless of insertion interleaving
// or timing fields.
func canonicalAnswers(t *testing.T, cl *Client, queries []*graph.Graph) []byte {
	t.Helper()
	ctx := context.Background()
	type answer struct {
		Skyline []server.PointJSON `json:"skyline"`
		TopK    []server.ItemJSON  `json:"topk"`
		Range   []server.ItemJSON  `json:"range"`
	}
	radius := 6.0
	var answers []answer
	for _, q := range queries {
		sky, err := cl.Skyline(ctx, server.QueryRequest{Graph: q})
		if err != nil {
			t.Fatalf("skyline: %v", err)
		}
		// K covers the whole database so score ties at a smaller k's
		// boundary cannot make the result set run-dependent.
		topk, err := cl.TopK(ctx, server.QueryRequest{Graph: q, K: 100})
		if err != nil {
			t.Fatalf("topk: %v", err)
		}
		rng, err := cl.Range(ctx, server.QueryRequest{Graph: q, Radius: &radius})
		if err != nil {
			t.Fatalf("range: %v", err)
		}
		a := answer{Skyline: sky.Skyline, TopK: topk.Items, Range: rng.Items}
		sort.Slice(a.Skyline, func(i, j int) bool { return a.Skyline[i].ID < a.Skyline[j].ID })
		sortItems(a.TopK)
		sortItems(a.Range)
		answers = append(answers, a)
	}
	b, err := json.Marshal(answers)
	if err != nil {
		t.Fatalf("marshal answers: %v", err)
	}
	return b
}

func sortItems(items []server.ItemJSON) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Score != items[j].Score {
			return items[i].Score < items[j].Score
		}
		return items[i].ID < items[j].ID
	})
}
