package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"skygraph/internal/dataset"
	"skygraph/internal/gdb"
	"skygraph/internal/server"
)

func fastOpts() Options {
	return Options{
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
	}
}

func writeErr(w http.ResponseWriter, code int, class string, retryAfterMS int64) {
	if retryAfterMS > 0 {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(server.ErrorResponse{Error: "injected", Class: class, RetryAfterMS: retryAfterMS})
}

// TestQueryRetriesThroughTransientFailures: the first two attempts 503,
// the third answers; the client's caller sees only the success.
func TestQueryRetriesThroughTransientFailures(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			writeErr(w, http.StatusServiceUnavailable, server.ClassUnavailable, 1)
			return
		}
		_ = json.NewEncoder(w).Encode(server.SkylineResponse{Basis: []string{"DistEd"}})
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	resp, err := c.Skyline(context.Background(), server.QueryRequest{Graph: dataset.PaperQuery()})
	if err != nil {
		t.Fatalf("Skyline: %v", err)
	}
	if len(resp.Basis) != 1 || hits.Load() != 3 {
		t.Fatalf("basis %v after %d attempts", resp.Basis, hits.Load())
	}
}

// TestMaxAttempts: a permanently failing query surfaces the APIError
// after exactly MaxAttempts tries.
func TestMaxAttempts(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeErr(w, http.StatusServiceUnavailable, server.ClassUnavailable, 0)
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	_, err := c.Skyline(context.Background(), server.QueryRequest{Graph: dataset.PaperQuery()})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 4 {
		t.Fatalf("attempts = %d, want 4", hits.Load())
	}
}

// TestRetryBudget: with only one token of burst and no earn-back,
// retries stop when the budget drains, wrapped in
// ErrRetryBudgetExhausted.
func TestRetryBudget(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeErr(w, http.StatusServiceUnavailable, server.ClassUnavailable, 0)
	}))
	defer ts.Close()
	opts := fastOpts()
	opts.MaxAttempts = 10
	opts.RetryBudget = 1.5
	opts.RetryRatio = 0.0001
	c := New(ts.URL, opts)
	_, err := c.Skyline(context.Background(), server.QueryRequest{Graph: dataset.PaperQuery()})
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("budget error does not wrap the APIError: %v", err)
	}
	if hits.Load() != 2 { // 1 attempt + the single budgeted retry
		t.Fatalf("attempts = %d, want 2", hits.Load())
	}
}

// TestRetrySafetyRules pins the classification table.
func TestRetrySafetyRules(t *testing.T) {
	transport := errors.New("connection refused")
	cases := []struct {
		name     string
		err      error
		mutation bool
		keyed    bool
		want     bool
	}{
		{"query-transport", transport, false, false, true},
		{"unkeyed-mutation-transport", transport, true, false, false},
		{"keyed-mutation-transport", transport, true, true, true},
		{"query-500", &APIError{Status: 500, Class: server.ClassInternal}, false, false, true},
		{"keyed-mutation-500", &APIError{Status: 500, Class: server.ClassInternal}, true, true, false},
		{"keyed-mutation-corrupt", &APIError{Status: 500, Class: server.ClassCorrupt}, true, true, false},
		{"query-corrupt", &APIError{Status: 500, Class: server.ClassCorrupt}, false, false, false},
		{"keyed-mutation-503", &APIError{Status: 503, Class: server.ClassTransient}, true, true, true},
		{"keyed-mutation-degraded", &APIError{Status: 503, Class: server.ClassDegraded}, true, true, true},
		{"unkeyed-mutation-503", &APIError{Status: 503, Class: server.ClassTransient}, true, false, false},
		{"query-429", &APIError{Status: 429, Class: server.ClassOverloaded}, false, false, true},
		{"query-400", &APIError{Status: 400, Class: server.ClassBadRequest}, false, false, false},
		{"mutation-409", &APIError{Status: 409, Class: server.ClassConflict}, true, true, false},
		{"query-404", &APIError{Status: 404, Class: server.ClassNotFound}, false, false, false},
	}
	for _, tc := range cases {
		if got, _ := retryable(tc.err, tc.mutation, tc.keyed); got != tc.want {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryAfterHonored: the server's hint (well above the base
// backoff) sets the floor for the retry delay.
func TestRetryAfterHonored(t *testing.T) {
	var first atomic.Int64
	var gap atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if first.CompareAndSwap(0, now) {
			writeErr(w, http.StatusTooManyRequests, server.ClassOverloaded, 150)
			return
		}
		gap.Store(now - first.Load())
		_ = json.NewEncoder(w).Encode(server.SkylineResponse{})
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	if _, err := c.Skyline(context.Background(), server.QueryRequest{Graph: dataset.PaperQuery()}); err != nil {
		t.Fatalf("Skyline: %v", err)
	}
	if got := time.Duration(gap.Load()); got < 150*time.Millisecond {
		t.Fatalf("retry fired after %v, before the 150ms Retry-After", got)
	}
}

// TestInsertKeyStableAcrossRetries: the auto-generated idempotency key
// must be identical on every attempt — that is what makes the retry
// safe — and the call must come back replayed at most once applied.
func TestInsertKeyStableAcrossRetries(t *testing.T) {
	var keys []string
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req server.InsertRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		keys = append(keys, req.IdempotencyKey)
		if hits.Add(1) == 1 {
			writeErr(w, http.StatusServiceUnavailable, server.ClassTransient, 1)
			return
		}
		_ = json.NewEncoder(w).Encode(server.InsertResponse{Inserted: []string{"g"}})
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	resp, err := c.Insert(context.Background(), server.InsertRequest{Graph: dataset.PaperDB()[0]})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if len(resp.Inserted) != 1 {
		t.Fatalf("inserted %v", resp.Inserted)
	}
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("idempotency keys across attempts: %q", keys)
	}
}

// TestDeadlinePropagation: every attempt carries X-Skygraph-Timeout-Ms
// no larger than the attempt timeout.
func TestDeadlinePropagation(t *testing.T) {
	var got atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v := r.Header.Get(server.TimeoutHeader)
		ms, _ := time.ParseDuration(v + "ms")
		got.Store(int64(ms))
		_ = json.NewEncoder(w).Encode(server.SkylineResponse{})
	}))
	defer ts.Close()
	opts := fastOpts()
	opts.AttemptTimeout = 300 * time.Millisecond
	c := New(ts.URL, opts)
	if _, err := c.Skyline(context.Background(), server.QueryRequest{Graph: dataset.PaperQuery()}); err != nil {
		t.Fatal(err)
	}
	d := time.Duration(got.Load())
	if d <= 0 || d > 300*time.Millisecond {
		t.Fatalf("propagated deadline %v, want (0, 300ms]", d)
	}
}

// TestCallerDeadlineStopsRetries: a context that expires mid-backoff
// surfaces the last real error without further attempts.
func TestCallerDeadlineStopsRetries(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeErr(w, http.StatusServiceUnavailable, server.ClassUnavailable, 5000)
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.Skyline(ctx, server.QueryRequest{Graph: dataset.PaperQuery()})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want the server's APIError", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 (Retry-After outlives the caller)", hits.Load())
	}
}

// TestAPIErrorParsing: class and hint come from the JSON body, with
// the Retry-After header as fallback.
func TestAPIErrorParsing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"degraded-readonly","class":"degraded"}`))
	}))
	defer ts.Close()
	opts := fastOpts()
	opts.MaxAttempts = 1
	c := New(ts.URL, opts)
	_, err := c.Insert(context.Background(), server.InsertRequest{Graph: dataset.PaperDB()[0]})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.Class != server.ClassDegraded || apiErr.Message != "degraded-readonly" {
		t.Fatalf("parsed %+v", apiErr)
	}
	if apiErr.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s from the header fallback", apiErr.RetryAfter)
	}
}

// TestJitterBounds: the jittered delay stays in [d/2, d].
func TestJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		if j := jitter(d); j < d/2 || j > d {
			t.Fatalf("jitter(%v) = %v out of [%v, %v]", d, j, d/2, d)
		}
	}
}

// TestEndToEndAgainstRealServer drives the real handler stack: a keyed
// insert retried against a server whose first append fails transient
// lands exactly once.
func TestEndToEndAgainstRealServer(t *testing.T) {
	s := server.New(gdb.NewSharded(2), server.Config{CacheSize: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	ctx := context.Background()
	if _, err := c.Insert(ctx, server.InsertRequest{Graphs: dataset.PaperDB()}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	fresh := dataset.PaperDB()[0].Clone()
	fresh.SetName("idem-x")
	req := server.InsertRequest{Graph: fresh, IdempotencyKey: "fixed"}
	first, err := c.Insert(ctx, req)
	if err != nil || first.Replayed {
		t.Fatalf("keyed insert: resp %+v err %v", first, err)
	}
	// The same keyed request replays rather than conflicting.
	resp, err := c.Insert(ctx, req)
	if err != nil || !resp.Replayed {
		t.Fatalf("replay: resp %+v err %v", resp, err)
	}
	sky, err := c.Skyline(ctx, server.QueryRequest{Graph: dataset.PaperQuery()})
	if err != nil || len(sky.Skyline) == 0 {
		t.Fatalf("skyline: %+v err %v", sky, err)
	}
	del, err := c.Delete(ctx, "idem-x", "")
	if err != nil || del.Deleted != "idem-x" {
		t.Fatalf("delete: %+v err %v", del, err)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.DB.Graphs == 0 {
		t.Fatalf("stats: err %v", err)
	}
}
