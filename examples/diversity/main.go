// Diversity: reproduce the paper's Section VI + VII walk-through end to
// end on the reconstructed database — compute GSS(D, q), then refine it to
// the most diverse 2-subset; finally rerun the Table IV/V computation on
// the exact pairwise fixture decoded from the paper.
//
//	go run ./examples/diversity
package main

import (
	"fmt"
	"log"

	"skygraph/internal/core"
	"skygraph/internal/dataset"
	"skygraph/internal/diversity"
)

func main() {
	eng := core.NewEngine()
	if err := eng.Add(dataset.PaperDB()...); err != nil {
		log.Fatal(err)
	}
	q := dataset.PaperQuery()

	res, err := eng.DiverseSkyline(q, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GSS(D,q) on the reconstructed database:\n")
	for _, m := range res.Members {
		fmt.Printf("  %-3s (%.0f, %.2f, %.2f)\n", m.Name, m.Vector[0], m.Vector[1], m.Vector[2])
	}
	fmt.Printf("most diverse 2-subset of the reconstruction: %v\n\n", res.Selected)

	// Table IV/V on the exact pairwise distances decoded from the paper
	// (the reconstruction matches Tables II/III but not the lost figure's
	// pairwise geometry, so the canonical Section VII numbers come from
	// this fixture).
	m := dataset.PaperPairwise()
	best, all, err := diversity.Exhaustive(m, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table V on the decoded pairwise fixture:")
	fmt.Printf("%-10s %3s %3s %3s %5s\n", "subset", "r1", "r2", "r3", "val")
	for _, c := range all {
		fmt.Printf("{%s,%s} %4d %3d %3d %5d\n",
			dataset.PaperPairwiseIDs[c.Members[0]], dataset.PaperPairwiseIDs[c.Members[1]],
			c.Ranks[0], c.Ranks[1], c.Ranks[2], c.Val)
	}
	fmt.Printf("winner: {%s, %s} with val=%d (paper: {g1, g4}, val=5)\n",
		dataset.PaperPairwiseIDs[best.Members[0]], dataset.PaperPairwiseIDs[best.Members[1]], best.Val)
}
