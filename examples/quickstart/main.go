// Quickstart: build a tiny graph database, run a similarity skyline query,
// and see why a vector of similarity measures beats a single one — the
// graph closest by edit distance is not the one sharing the most structure,
// and the skyline keeps both.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skygraph/internal/core"
	"skygraph/internal/graph"
)

func main() {
	// The query: a path of four "A" vertices joined by "x" edges.
	q := graph.Path(4, "A", "x")
	q.SetName("query")

	// relabeled: the query with its second vertex relabeled to "B".
	// One edit away (best DistEd) but the relabel breaks two of the three
	// edges of the common subgraph, so it shares little structure.
	relabeled := graph.Path(4, "A", "x")
	relabeled.RelabelVertex(1, "B")
	relabeled.SetName("relabeled")

	// extended: the query with one extra pendant vertex. Two edits away,
	// but the whole query survives inside it (large common subgraph).
	extended := graph.Path(5, "A", "x")
	extended.SetName("extended")

	// recolored: the query with every edge relabeled to "y". Three edits
	// and no common labeled edge at all.
	recolored := graph.Path(4, "A", "y")
	recolored.SetName("recolored")

	eng := core.NewEngine()
	if err := eng.Add(relabeled, extended, recolored); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Skyline(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s\n\n", q)
	fmt.Printf("compound similarity vectors (DistEd, DistMcs, DistGu) — smaller is better:\n")
	for _, m := range res.All {
		fmt.Printf("  %-10s (%.0f, %.2f, %.2f)\n", m.Name, m.Vector[0], m.Vector[1], m.Vector[2])
	}

	fmt.Printf("\nsimilarity skyline (Pareto-optimal answers):\n")
	for _, m := range res.Members {
		fmt.Printf("  %s\n", m.Name)
	}
	for _, m := range res.All {
		if dom, ok := core.Explain(res, m.Name); ok {
			fmt.Printf("  (%s is dominated by %s)\n", m.Name, dom)
		}
	}
	fmt.Println("\n'relabeled' wins on edit distance, 'extended' on shared structure;")
	fmt.Println("no single measure would have returned both.")
}
