// Skyband: controlling the size of a skyline answer set in both
// directions. The paper's Section VII shrinks a too-large skyline via
// diversity; this example also shows the opposite relaxation — the
// k-skyband (graphs dominated by fewer than k others) and skyline layers —
// on the paper's own data.
//
//	go run ./examples/skyband
package main

import (
	"fmt"
	"log"

	"skygraph/internal/core"
	"skygraph/internal/dataset"
	"skygraph/internal/skyline"
)

func main() {
	eng := core.NewEngine()
	if err := eng.Add(dataset.PaperDB()...); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Skyline(dataset.PaperQuery())
	if err != nil {
		log.Fatal(err)
	}

	// Rebuild the full point set from the query result.
	pts := make([]skyline.Point, len(res.All))
	for i, m := range res.All {
		pts[i] = skyline.Point{ID: m.Name, Vec: m.Vector}
	}

	fmt.Println("skyline (1-skyband):", names(skyline.Skyband(pts, 1)))
	fmt.Println("2-skyband:          ", names(skyline.Skyband(pts, 2)))
	fmt.Println("3-skyband:          ", names(skyline.Skyband(pts, 3)))

	counts := skyline.DominationCount(pts)
	fmt.Println("\ndomination counts:")
	for i, p := range pts {
		fmt.Printf("  %-3s dominated by %d graph(s)\n", p.ID, counts[i])
	}

	fmt.Println("\nskyline layers (onion peeling):")
	for li, layer := range skyline.Layers(pts) {
		fmt.Printf("  layer %d: %v\n", li+1, names(layer))
	}

	// And the shrinking direction, as in Section VII:
	div, err := eng.DiverseSkyline(dataset.PaperQuery(), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmost diverse 2 of the skyline: %v\n", div.Selected)
}

func names(ps []skyline.Point) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}
