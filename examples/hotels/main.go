// Hotels: the paper's introductory skyline example (Table I / Example 1).
// This example exercises the skyline package directly on non-graph data to
// show the Pareto machinery is generic: a hotel is "better" if it is both
// cheaper and closer to the beach.
//
//	go run ./examples/hotels
package main

import (
	"fmt"

	"skygraph/internal/dataset"
	"skygraph/internal/skyline"
)

func main() {
	hotels := dataset.Hotels()
	fmt.Println("hotel   price(e)  distance(km)")
	for _, h := range hotels {
		fmt.Printf("%-7s %8.1f %13.0f\n", h.ID, h.Vec[0], h.Vec[1])
	}

	sky := skyline.Compute(hotels)
	fmt.Printf("\nskyline (not dominated on both price and distance):\n")
	for _, h := range sky {
		fmt.Printf("  %s (%.1fe, %.0fkm)\n", h.ID, h.Vec[0], h.Vec[1])
	}

	// The paper's two domination examples.
	fmt.Println("\ndomination checks from Example 1:")
	fmt.Printf("  H2 dominates H1: %v\n", skyline.Dominates(hotels[1].Vec, hotels[0].Vec))
	fmt.Printf("  H6 dominates H7: %v\n", skyline.Dominates(hotels[5].Vec, hotels[6].Vec))
}
