// Chemical: a molecule-like similarity search workload — the use case the
// paper's introduction motivates (chemical compound databases). A synthetic
// database of atom/bond labeled graphs is queried with a noisy variant of
// one of its members; the skyline surfaces every Pareto-optimal match and
// the top-k baseline shows what a single measure would miss.
//
//	go run ./examples/chemical
package main

import (
	"fmt"
	"log"

	"skygraph/internal/core"
	"skygraph/internal/dataset"
	"skygraph/internal/measure"
)

func main() {
	const n = 30
	db := dataset.MoleculeDB(n, 8, 12, 2026)
	// The query is db member #0 with three random edit operations applied —
	// a controlled-noise query, so m000 should score very well.
	q := dataset.NoisyQueries(db[:1], 1, 3, 7)[0]

	// Cap the exact engines so worst-case pairs degrade gracefully to
	// bounds instead of stalling; caps this size are rarely hit at n<=12
	// vertices.
	eng := core.NewEngine(core.WithBudget(200_000, 200_000))
	if err := eng.Add(db...); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Skyline(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d molecules (8-12 atoms)\n", n)
	fmt.Printf("query:    %s = %s with 3 random edits\n\n", q.Name(), db[0].Name())
	fmt.Printf("similarity skyline (%d members, %d inexact evaluations):\n", len(res.Members), res.Inexact)
	fmt.Printf("%-8s %8s %8s %8s\n", "graph", "DistEd", "DistMcs", "DistGu")
	for _, m := range res.Members {
		fmt.Printf("%-8s %8.2f %8.2f %8.2f\n", m.Name, m.Vector[0], m.Vector[1], m.Vector[2])
	}

	for _, mm := range []measure.Measure{measure.DistEd{}, measure.DistGu{}} {
		top, err := eng.TopK(q, mm, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop-3 by %s alone:\n", mm.Name())
		for i, it := range top {
			fmt.Printf("%2d. %-8s %.3f\n", i+1, it.Name, it.Vector[0])
		}
	}
	fmt.Println("\n(different single measures already disagree on the ranking —")
	fmt.Println(" the skyline keeps every graph that is best under some trade-off)")
}
